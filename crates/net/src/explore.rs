//! Exhaustive schedule exploration — a small model checker for pulse
//! protocols.
//!
//! The paper's theorems are `∀ schedule` statements. The adversaries in
//! [`crate::sched`] sample that space; this module *exhausts* it on small
//! instances: starting from the initial configuration it explores **every**
//! reachable configuration under **every** possible delivery order,
//! verifying a safety predicate in each and a final predicate in every
//! quiescent configuration.
//!
//! [`explore`] runs on the snapshot layer: the protocol implements
//! [`Snapshot`], so the explorer checkpoints a real [`Simulation`] with
//! [`Simulation::snapshot`], branches with [`Simulation::step_channel`], and
//! deduplicates visited configurations by their stable 64-bit
//! [`Simulation::fingerprint`] — **8 bytes per configuration** regardless of
//! ring size. The previous-generation explorer is kept as
//! [`explore_reference`]: it stores full `(queues, terminated, node-keys)`
//! tuples per configuration, which grows linearly with the ring and is what
//! limited the reachable instance sizes. Differential tests assert the two
//! enumerate identical state spaces where both fit in memory.
//!
//! ```rust
//! use co_net::explore::{explore, ExploreLimits};
//! use co_net::{Context, Fingerprint, Port, Protocol, Pulse, RingSpec, Snapshot};
//!
//! /// Each node forwards the first pulse it sees and stops.
//! #[derive(Clone, Debug)]
//! struct Once(bool);
//! impl Protocol<Pulse> for Once {
//!     type Output = ();
//!     fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
//!         ctx.send(Port::One, Pulse);
//!     }
//!     fn on_message(&mut self, _p: Port, _m: Pulse, ctx: &mut Context<'_, Pulse>) {
//!         if !self.0 {
//!             self.0 = true;
//!             ctx.send(Port::One, Pulse);
//!         }
//!     }
//!     fn output(&self) -> Option<()> { None }
//! }
//! impl Snapshot for Once {
//!     type State = bool;
//!     fn extract(&self) -> bool { self.0 }
//!     fn restore(&mut self, state: &bool) { self.0 = *state; }
//!     fn fingerprint(&self) -> u64 { u64::from(self.0) }
//! }
//!
//! let spec = RingSpec::oriented(vec![1, 2, 3]);
//! let report = explore(
//!     &spec.wiring(),
//!     || vec![Once(false), Once(false), Once(false)],
//!     |_state| Ok(()),                    // safety predicate
//!     |state| {
//!         // In every quiescent configuration, everyone relayed once.
//!         if state.nodes.iter().all(|n| n.0) { Ok(()) } else { Err("missed".into()) }
//!     },
//!     ExploreLimits::default(),
//! );
//! assert!(report.complete);
//! assert!(report.violations.is_empty());
//! assert!(report.quiescent_configs >= 1);
//! ```

use crate::message::Pulse;
use crate::port::Port;
use crate::sched::FifoScheduler;
use crate::sim::{Context, Protocol, Simulation};
use crate::snapshot::Snapshot;
use crate::topology::{ChannelId, Wiring};
use std::collections::HashSet;
use std::hash::Hash;

/// Bounds on the exploration.
#[derive(Copy, Clone, Debug)]
pub struct ExploreLimits {
    /// Maximum distinct configurations to visit before giving up.
    pub max_configs: usize,
    /// Maximum deliveries along any single path (guards non-terminating
    /// protocols).
    pub max_depth: usize,
    /// Maximum bytes of visited-set storage before giving up.
    ///
    /// This is the budget on which [`explore`] (8 bytes/config) and
    /// [`explore_reference`] (full state tuples) are compared: with the same
    /// byte budget, fingerprint dedup reaches instances the reference
    /// explorer cannot.
    pub max_state_bytes: usize,
}

impl Default for ExploreLimits {
    fn default() -> ExploreLimits {
        ExploreLimits {
            max_configs: 2_000_000,
            max_depth: 100_000,
            max_state_bytes: usize::MAX,
        }
    }
}

/// Result of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Distinct configurations visited.
    pub configs: usize,
    /// Distinct quiescent configurations found.
    pub quiescent_configs: usize,
    /// Safety / quiescence predicate failures (deduplicated messages).
    pub violations: Vec<String>,
    /// Whether the state space was fully explored within the limits.
    pub complete: bool,
    /// Bytes of visited-set storage used by the deduplication index.
    pub visited_bytes: usize,
}

/// A configuration handed to the predicates.
#[derive(Clone, Debug)]
pub struct ExploreState<P> {
    /// Protocol instances, in node order.
    pub nodes: Vec<P>,
    /// Per-channel queued-pulse counts, indexed by [`ChannelId::index`].
    pub queues: Vec<u32>,
    /// Per-node terminated flags.
    pub terminated: Vec<bool>,
    /// Total pulses sent so far along this path.
    pub sent: u64,
}

impl<P> ExploreState<P> {
    /// Whether no pulses are in transit.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.queues.iter().all(|&q| q == 0)
    }
}

fn note_violation(violations: &mut Vec<String>, msg: String) {
    if violations.len() < 16 && !violations.contains(&msg) {
        violations.push(msg);
    }
}

fn state_of<P: Protocol<Pulse> + Clone>(sim: &Simulation<Pulse, P>) -> ExploreState<P> {
    let n = sim.wiring().len();
    ExploreState {
        nodes: sim.nodes().to_vec(),
        queues: (0..2 * n)
            .map(|ch| sim.queue_len(ChannelId::from_index(ch)) as u32)
            .collect(),
        terminated: (0..n).map(|v| sim.is_terminated(v)).collect(),
        sent: sim.stats().total_sent,
    }
}

/// Exhaustively explores every delivery order of a pulse protocol, with
/// fingerprint-based visited-state deduplication.
///
/// * `make_nodes` builds the initial protocol instances (one per node of
///   `wiring`);
/// * `safety` is checked in every reachable configuration;
/// * `at_quiescence` is checked in every reachable quiescent configuration.
///
/// The node fingerprint comes from the protocol's [`Snapshot`]
/// implementation, which must capture *all* behaviourally relevant state
/// (two nodes with equal fingerprints must behave identically forever).
/// Each visited configuration costs 8 bytes of dedup storage, so the
/// explorer reaches ring sizes the tuple-keyed [`explore_reference`]
/// cannot under the same [`ExploreLimits::max_state_bytes`] budget.
///
/// Returns an [`ExploreReport`]; exploration stops early (with
/// `complete = false`) if any limit is hit.
pub fn explore<P, FM, FS, FQ>(
    wiring: &Wiring,
    make_nodes: FM,
    safety: FS,
    at_quiescence: FQ,
    limits: ExploreLimits,
) -> ExploreReport
where
    P: Protocol<Pulse> + Snapshot + Clone,
    FM: FnOnce() -> Vec<P>,
    FS: Fn(&ExploreState<P>) -> Result<(), String>,
    FQ: Fn(&ExploreState<P>) -> Result<(), String>,
{
    let nodes = make_nodes();
    assert_eq!(nodes.len(), wiring.len(), "one protocol instance per node");
    let mut sim: Simulation<Pulse, P> =
        Simulation::new(wiring.clone(), nodes, Box::new(FifoScheduler::new()));
    sim.start();

    const BYTES_PER_CONFIG: usize = std::mem::size_of::<u64>();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut violations: Vec<String> = Vec::new();
    let mut quiescent_configs = 0usize;
    let mut complete = true;

    visited.insert(sim.fingerprint());
    // DFS stack of (checkpoint, depth).
    let mut stack = vec![(sim.snapshot(), 0usize)];

    'dfs: while let Some((snapshot, depth)) = stack.pop() {
        sim.restore(&snapshot);
        let state = state_of(&sim);
        if let Err(e) = safety(&state) {
            note_violation(&mut violations, format!("safety: {e}"));
        }
        if state.is_quiescent() {
            quiescent_configs += 1;
            if let Err(e) = at_quiescence(&state) {
                note_violation(&mut violations, format!("at quiescence: {e}"));
            }
            continue;
        }
        if depth >= limits.max_depth {
            complete = false;
            continue;
        }
        // Branch: deliver the head of every non-empty channel.
        for channel in sim.ready_channels() {
            sim.restore(&snapshot);
            sim.step_channel(channel)
                .expect("ready channel has a message");
            let fp = sim.fingerprint();
            if visited.contains(&fp) {
                continue;
            }
            // Only *new* entries cost storage; revisits are free.
            if visited.len() >= limits.max_configs
                || (visited.len() + 1) * BYTES_PER_CONFIG > limits.max_state_bytes
            {
                complete = false;
                break 'dfs;
            }
            visited.insert(fp);
            stack.push((sim.snapshot(), depth + 1));
        }
    }

    ExploreReport {
        configs: visited.len(),
        quiescent_configs,
        violations,
        complete,
        visited_bytes: visited.len() * BYTES_PER_CONFIG,
    }
}

/// The previous-generation explorer, kept as a differential-testing oracle.
///
/// Instead of snapshots and fingerprints it re-implements delivery on a bare
/// `(queues, nodes)` state and deduplicates through *full* state tuples
/// `(queue counts, terminated flags, caller-supplied node keys)` — storage
/// per configuration grows with the ring, which is exactly the limitation
/// the snapshot-layer [`explore`] removes. Kept verbatim so tests can assert
/// that the rewrite enumerates the identical state space.
pub fn explore_reference<P, K, FM, FF, FS, FQ>(
    wiring: &Wiring,
    make_nodes: FM,
    fingerprint: FF,
    safety: FS,
    at_quiescence: FQ,
    limits: ExploreLimits,
) -> ExploreReport
where
    P: Protocol<Pulse> + Clone,
    K: Eq + Hash,
    FM: FnOnce() -> Vec<P>,
    FF: Fn(&P) -> K,
    FS: Fn(&ExploreState<P>) -> Result<(), String>,
    FQ: Fn(&ExploreState<P>) -> Result<(), String>,
{
    let n = wiring.len();
    let channels = wiring.channel_count();
    // What one dedup entry costs: the heap payload of the three vectors.
    let bytes_per_config = channels * std::mem::size_of::<u32>() + n + n * std::mem::size_of::<K>();

    // Initial configuration: run every on_start.
    let mut nodes = make_nodes();
    assert_eq!(nodes.len(), n, "one protocol instance per node");
    let mut queues = vec![0u32; channels];
    let mut outbox: Vec<(usize, Pulse)> = Vec::new();
    let mut sent = 0u64;
    for (v, node) in nodes.iter_mut().enumerate() {
        let mut ctx = Context::new_internal(v, &mut outbox);
        node.on_start(&mut ctx);
        for (port, _msg) in outbox.drain(..) {
            queues[ChannelId::new(v, Port::from_index(port)).index()] += 1;
            sent += 1;
        }
    }
    let terminated: Vec<bool> = nodes.iter().map(Protocol::is_terminated).collect();
    let initial = ExploreState {
        nodes,
        queues,
        terminated,
        sent,
    };

    let key_of = |state: &ExploreState<P>| -> (Vec<u32>, Vec<bool>, Vec<K>) {
        (
            state.queues.clone(),
            state.terminated.clone(),
            state.nodes.iter().map(&fingerprint).collect(),
        )
    };

    let mut visited: HashSet<(Vec<u32>, Vec<bool>, Vec<K>)> = HashSet::new();
    let mut violations: Vec<String> = Vec::new();
    let mut quiescent_configs = 0usize;
    let mut complete = true;

    visited.insert(key_of(&initial));
    // DFS stack of (state, depth).
    let mut stack: Vec<(ExploreState<P>, usize)> = vec![(initial, 0)];

    while let Some((state, depth)) = stack.pop() {
        if let Err(e) = safety(&state) {
            note_violation(&mut violations, format!("safety: {e}"));
        }
        if state.is_quiescent() {
            quiescent_configs += 1;
            if let Err(e) = at_quiescence(&state) {
                note_violation(&mut violations, format!("at quiescence: {e}"));
            }
            continue;
        }
        if depth >= limits.max_depth {
            complete = false;
            continue;
        }
        // Branch on every non-empty channel.
        for ch in 0..state.queues.len() {
            if state.queues[ch] == 0 {
                continue;
            }
            let mut next = state.clone();
            next.queues[ch] -= 1;
            let channel = ChannelId::from_index(ch);
            let (dst, port) = wiring.endpoint(channel);
            if !next.terminated[dst] {
                let mut outbox: Vec<(usize, Pulse)> = Vec::new();
                {
                    let mut ctx = Context::new_internal(dst, &mut outbox);
                    next.nodes[dst].on_message(port, Pulse, &mut ctx);
                }
                for (out_port, _msg) in outbox.drain(..) {
                    next.queues[ChannelId::new(dst, Port::from_index(out_port)).index()] += 1;
                    next.sent += 1;
                }
                next.terminated[dst] = next.nodes[dst].is_terminated();
            }
            let key = key_of(&next);
            if visited.contains(&key) {
                continue;
            }
            // Same accounting rule as [`explore`]: only new entries pay.
            if visited.len() >= limits.max_configs
                || (visited.len() + 1) * bytes_per_config > limits.max_state_bytes
            {
                complete = false;
                break;
            }
            visited.insert(key);
            stack.push((next, depth + 1));
        }
        if !complete
            && (visited.len() >= limits.max_configs
                || (visited.len() + 1) * bytes_per_config > limits.max_state_bytes)
        {
            break;
        }
    }

    ExploreReport {
        configs: visited.len(),
        quiescent_configs,
        violations,
        complete,
        visited_bytes: visited.len() * bytes_per_config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Fingerprint;
    use crate::topology::RingSpec;

    /// Forwards every pulse, absorbing the `id`-th — a miniature
    /// Algorithm 1 used to validate the explorer itself.
    #[derive(Clone, Debug)]
    struct MiniAlg1 {
        id: u32,
        rho: u32,
    }

    impl Protocol<Pulse> for MiniAlg1 {
        type Output = bool;
        fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
            ctx.send(Port::One, Pulse);
        }
        fn on_message(&mut self, _p: Port, _m: Pulse, ctx: &mut Context<'_, Pulse>) {
            self.rho += 1;
            if self.rho != self.id {
                ctx.send(Port::One, Pulse);
            }
        }
        fn output(&self) -> Option<bool> {
            Some(self.rho == self.id)
        }
    }

    impl Snapshot for MiniAlg1 {
        type State = (u32, u32);
        fn extract(&self) -> Self::State {
            (self.id, self.rho)
        }
        fn restore(&mut self, state: &Self::State) {
            (self.id, self.rho) = *state;
        }
        fn fingerprint(&self) -> u64 {
            let mut fp = Fingerprint::new();
            fp.write_u64(u64::from(self.id));
            fp.write_u64(u64::from(self.rho));
            fp.finish()
        }
    }

    fn mini_ring() -> Vec<MiniAlg1> {
        vec![
            MiniAlg1 { id: 1, rho: 0 },
            MiniAlg1 { id: 3, rho: 0 },
            MiniAlg1 { id: 2, rho: 0 },
        ]
    }

    fn mini_safety(state: &ExploreState<MiniAlg1>) -> Result<(), String> {
        // Corollary 14 analogue: counters never exceed ID_max.
        if state.nodes.iter().any(|n| n.rho > 3) {
            Err("rho exceeded ID_max".into())
        } else {
            Ok(())
        }
    }

    fn mini_quiescence(state: &ExploreState<MiniAlg1>) -> Result<(), String> {
        // Every quiescent configuration: all counters at ID_max.
        if state.nodes.iter().all(|n| n.rho == 3) {
            Ok(())
        } else {
            Err(format!(
                "quiescent with counters {:?}",
                state.nodes.iter().map(|n| n.rho).collect::<Vec<_>>()
            ))
        }
    }

    #[test]
    fn explores_all_schedules_of_mini_alg1() {
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        let report = explore(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            ExploreLimits::default(),
        );
        assert!(report.complete, "state space should be exhausted");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.configs > 10, "nontrivial state space");
        assert!(report.quiescent_configs >= 1);
        assert_eq!(report.visited_bytes, report.configs * 8);
    }

    #[test]
    fn snapshot_explorer_matches_the_reference() {
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        let snap = explore(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            ExploreLimits::default(),
        );
        let reference = explore_reference(
            &spec.wiring(),
            mini_ring,
            |node| (node.id, node.rho),
            mini_safety,
            mini_quiescence,
            ExploreLimits::default(),
        );
        assert_eq!(snap.configs, reference.configs);
        assert_eq!(snap.quiescent_configs, reference.quiescent_configs);
        assert!(snap.complete && reference.complete);
        assert!(
            snap.visited_bytes < reference.visited_bytes,
            "fingerprints ({}) must be cheaper than tuples ({})",
            snap.visited_bytes,
            reference.visited_bytes
        );
    }

    #[test]
    fn byte_budget_starves_the_reference_first() {
        // Pick a budget that covers the full fingerprint index but not the
        // reference's tuple index: the snapshot explorer completes, the
        // reference cannot.
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        let full = explore(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            ExploreLimits::default(),
        );
        assert!(full.complete);
        let budget = ExploreLimits {
            max_state_bytes: full.visited_bytes + 8,
            ..ExploreLimits::default()
        };
        let snap = explore(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            budget,
        );
        assert!(snap.complete, "snapshot explorer fits in its own footprint");
        let reference = explore_reference(
            &spec.wiring(),
            mini_ring,
            |node| (node.id, node.rho),
            mini_safety,
            mini_quiescence,
            budget,
        );
        assert!(!reference.complete, "tuple index must exceed the budget");
        assert!(reference.configs < snap.configs);
    }

    #[test]
    fn limits_are_respected() {
        let spec = RingSpec::oriented(vec![1, 2]);
        let limits = ExploreLimits {
            max_configs: 16,
            max_depth: 8,
            max_state_bytes: usize::MAX,
        };
        let report = explore(
            &spec.wiring(),
            || vec![MiniAlg1 { id: 50, rho: 0 }, MiniAlg1 { id: 60, rho: 0 }],
            |_| Ok(()),
            |_| Ok(()),
            limits,
        );
        assert!(!report.complete);
        assert!(report.configs <= 17);
        let report = explore_reference(
            &spec.wiring(),
            || vec![MiniAlg1 { id: 50, rho: 0 }, MiniAlg1 { id: 60, rho: 0 }],
            |node| node.rho,
            |_| Ok(()),
            |_| Ok(()),
            limits,
        );
        assert!(!report.complete);
        assert!(report.configs <= 17);
    }
}
