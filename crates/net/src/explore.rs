//! Exhaustive schedule exploration — a small model checker for pulse
//! protocols.
//!
//! The paper's theorems are `∀ schedule` statements. The adversaries in
//! [`crate::sched`] sample that space; this module *exhausts* it on small
//! instances: starting from the initial configuration it explores **every**
//! reachable configuration under **every** possible delivery order,
//! verifying a safety predicate in each and a final predicate in every
//! quiescent configuration.
//!
//! Pulses carry no content, so a channel's state is fully described by its
//! queue *length*; a global configuration is `(per-channel counts, per-node
//! protocol states)`. The explorer deduplicates configurations through a
//! caller-supplied node fingerprint, which keeps the reachable space small
//! (e.g. Algorithm 2 on a 3-ring with `ID_max = 4` has a few thousand
//! distinct configurations, versus billions of schedules).
//!
//! ```rust
//! use co_net::explore::{explore, ExploreLimits};
//! use co_net::{Context, Port, Protocol, Pulse, RingSpec};
//!
//! /// Each node forwards the first pulse it sees and stops.
//! #[derive(Clone, Debug)]
//! struct Once(bool);
//! impl Protocol<Pulse> for Once {
//!     type Output = ();
//!     fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
//!         ctx.send(Port::One, Pulse);
//!     }
//!     fn on_message(&mut self, _p: Port, _m: Pulse, ctx: &mut Context<'_, Pulse>) {
//!         if !self.0 {
//!             self.0 = true;
//!             ctx.send(Port::One, Pulse);
//!         }
//!     }
//!     fn output(&self) -> Option<()> { None }
//! }
//!
//! let spec = RingSpec::oriented(vec![1, 2, 3]);
//! let report = explore(
//!     &spec.wiring(),
//!     || vec![Once(false), Once(false), Once(false)],
//!     |node| node.0,                      // fingerprint
//!     |_state| Ok(()),                    // safety predicate
//!     |state| {
//!         // In every quiescent configuration, everyone relayed once.
//!         if state.nodes.iter().all(|n| n.0) { Ok(()) } else { Err("missed".into()) }
//!     },
//!     ExploreLimits::default(),
//! );
//! assert!(report.complete);
//! assert!(report.violations.is_empty());
//! assert!(report.quiescent_configs >= 1);
//! ```

use crate::message::Pulse;
use crate::port::Port;
use crate::sim::{Context, Protocol};
use crate::topology::{ChannelId, Wiring};
use std::collections::HashSet;
use std::hash::Hash;

/// Bounds on the exploration.
#[derive(Copy, Clone, Debug)]
pub struct ExploreLimits {
    /// Maximum distinct configurations to visit before giving up.
    pub max_configs: usize,
    /// Maximum deliveries along any single path (guards non-terminating
    /// protocols).
    pub max_depth: usize,
}

impl Default for ExploreLimits {
    fn default() -> ExploreLimits {
        ExploreLimits {
            max_configs: 2_000_000,
            max_depth: 100_000,
        }
    }
}

/// Result of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Distinct configurations visited.
    pub configs: usize,
    /// Distinct quiescent configurations found.
    pub quiescent_configs: usize,
    /// Safety / quiescence predicate failures (deduplicated messages).
    pub violations: Vec<String>,
    /// Whether the state space was fully explored within the limits.
    pub complete: bool,
}

/// A configuration handed to the predicates.
#[derive(Clone, Debug)]
pub struct ExploreState<P> {
    /// Protocol instances, in node order.
    pub nodes: Vec<P>,
    /// Per-channel queued-pulse counts, indexed by [`ChannelId::index`].
    pub queues: Vec<u32>,
    /// Per-node terminated flags.
    pub terminated: Vec<bool>,
    /// Total pulses sent so far along this path.
    pub sent: u64,
}

impl<P> ExploreState<P> {
    /// Whether no pulses are in transit.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.queues.iter().all(|&q| q == 0)
    }
}

/// Exhaustively explores every delivery order of a pulse protocol.
///
/// * `make_nodes` builds the initial protocol instances (one per node of
///   `wiring`);
/// * `fingerprint` maps a node to a hashable key capturing *all* of its
///   behaviourally relevant state (two nodes with equal fingerprints must
///   behave identically forever);
/// * `safety` is checked in every reachable configuration;
/// * `at_quiescence` is checked in every reachable quiescent configuration.
///
/// Returns an [`ExploreReport`]; exploration stops early (with
/// `complete = false`) if the limits are hit.
pub fn explore<P, K, FM, FF, FS, FQ>(
    wiring: &Wiring,
    make_nodes: FM,
    fingerprint: FF,
    safety: FS,
    at_quiescence: FQ,
    limits: ExploreLimits,
) -> ExploreReport
where
    P: Protocol<Pulse> + Clone,
    K: Eq + Hash,
    FM: FnOnce() -> Vec<P>,
    FF: Fn(&P) -> K,
    FS: Fn(&ExploreState<P>) -> Result<(), String>,
    FQ: Fn(&ExploreState<P>) -> Result<(), String>,
{
    let n = wiring.len();
    let channels = wiring.channel_count();

    // Initial configuration: run every on_start.
    let mut nodes = make_nodes();
    assert_eq!(nodes.len(), n, "one protocol instance per node");
    let mut queues = vec![0u32; channels];
    let mut outbox: Vec<(usize, Pulse)> = Vec::new();
    let mut sent = 0u64;
    for (v, node) in nodes.iter_mut().enumerate() {
        let mut ctx = Context::new_internal(v, &mut outbox);
        node.on_start(&mut ctx);
        for (port, _msg) in outbox.drain(..) {
            queues[ChannelId::new(v, Port::from_index(port)).index()] += 1;
            sent += 1;
        }
    }
    let terminated: Vec<bool> = nodes.iter().map(Protocol::is_terminated).collect();
    let initial = ExploreState {
        nodes,
        queues,
        terminated,
        sent,
    };

    let key_of = |state: &ExploreState<P>| -> (Vec<u32>, Vec<bool>, Vec<K>) {
        (
            state.queues.clone(),
            state.terminated.clone(),
            state.nodes.iter().map(&fingerprint).collect(),
        )
    };

    let mut visited: HashSet<(Vec<u32>, Vec<bool>, Vec<K>)> = HashSet::new();
    let mut violations: Vec<String> = Vec::new();
    let mut quiescent_configs = 0usize;
    let mut complete = true;

    let note_violation = |violations: &mut Vec<String>, msg: String| {
        if violations.len() < 16 && !violations.contains(&msg) {
            violations.push(msg);
        }
    };

    visited.insert(key_of(&initial));
    // DFS stack of (state, depth).
    let mut stack: Vec<(ExploreState<P>, usize)> = vec![(initial, 0)];

    while let Some((state, depth)) = stack.pop() {
        if let Err(e) = safety(&state) {
            note_violation(&mut violations, format!("safety: {e}"));
        }
        if state.is_quiescent() {
            quiescent_configs += 1;
            if let Err(e) = at_quiescence(&state) {
                note_violation(&mut violations, format!("at quiescence: {e}"));
            }
            continue;
        }
        if depth >= limits.max_depth {
            complete = false;
            continue;
        }
        // Branch on every non-empty channel.
        for ch in 0..state.queues.len() {
            if state.queues[ch] == 0 {
                continue;
            }
            let mut next = state.clone();
            next.queues[ch] -= 1;
            let channel = ChannelId::from_index(ch);
            let (dst, port) = wiring.endpoint(channel);
            if !next.terminated[dst] {
                let mut outbox: Vec<(usize, Pulse)> = Vec::new();
                {
                    let mut ctx = Context::new_internal(dst, &mut outbox);
                    next.nodes[dst].on_message(port, Pulse, &mut ctx);
                }
                for (out_port, _msg) in outbox.drain(..) {
                    next.queues[ChannelId::new(dst, Port::from_index(out_port)).index()] += 1;
                    next.sent += 1;
                }
                next.terminated[dst] = next.nodes[dst].is_terminated();
            }
            if visited.len() >= limits.max_configs {
                complete = false;
                break;
            }
            if visited.insert(key_of(&next)) {
                stack.push((next, depth + 1));
            }
        }
        if !complete && visited.len() >= limits.max_configs {
            break;
        }
    }

    ExploreReport {
        configs: visited.len(),
        quiescent_configs,
        violations,
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::RingSpec;

    /// Forwards every pulse, absorbing the `id`-th — a miniature
    /// Algorithm 1 used to validate the explorer itself.
    #[derive(Clone, Debug)]
    struct MiniAlg1 {
        id: u32,
        rho: u32,
    }

    impl Protocol<Pulse> for MiniAlg1 {
        type Output = bool;
        fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
            ctx.send(Port::One, Pulse);
        }
        fn on_message(&mut self, _p: Port, _m: Pulse, ctx: &mut Context<'_, Pulse>) {
            self.rho += 1;
            if self.rho != self.id {
                ctx.send(Port::One, Pulse);
            }
        }
        fn output(&self) -> Option<bool> {
            Some(self.rho == self.id)
        }
    }

    #[test]
    fn explores_all_schedules_of_mini_alg1() {
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        let report = explore(
            &spec.wiring(),
            || {
                vec![
                    MiniAlg1 { id: 1, rho: 0 },
                    MiniAlg1 { id: 3, rho: 0 },
                    MiniAlg1 { id: 2, rho: 0 },
                ]
            },
            |node| (node.id, node.rho),
            |state| {
                // Corollary 14 analogue: counters never exceed ID_max.
                if state.nodes.iter().any(|n| n.rho > 3) {
                    Err("rho exceeded ID_max".into())
                } else {
                    Ok(())
                }
            },
            |state| {
                // Every quiescent configuration: all counters at ID_max.
                if state.nodes.iter().all(|n| n.rho == 3) {
                    Ok(())
                } else {
                    Err(format!(
                        "quiescent with counters {:?}",
                        state.nodes.iter().map(|n| n.rho).collect::<Vec<_>>()
                    ))
                }
            },
            ExploreLimits::default(),
        );
        assert!(report.complete, "state space should be exhausted");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.configs > 10, "nontrivial state space");
        assert!(report.quiescent_configs >= 1);
    }

    #[test]
    fn limits_are_respected() {
        let spec = RingSpec::oriented(vec![1, 2]);
        let report = explore(
            &spec.wiring(),
            || vec![MiniAlg1 { id: 50, rho: 0 }, MiniAlg1 { id: 60, rho: 0 }],
            |node| node.rho,
            |_| Ok(()),
            |_| Ok(()),
            ExploreLimits {
                max_configs: 16,
                max_depth: 8,
            },
        );
        assert!(!report.complete);
        assert!(report.configs <= 17);
    }
}
