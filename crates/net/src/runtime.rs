//! Async node facade over the event core — straight-line protocol logic.
//!
//! A [`Protocol`](crate::Protocol) is an event-driven state machine: control
//! flow that a human would write as "send, wait, send again" has to be
//! hand-compiled into `on_message` dispatch over explicit state enums. This
//! module lets node logic be written as a plain `async fn` instead and
//! compiles it *onto the very same engine events*:
//!
//! * [`NodeHandle::send`] buffers a message into the node's outbox — flushed
//!   by the engine when the current event returns, exactly like
//!   [`Context::send`](crate::Context::send);
//! * [`NodeHandle::recv`] suspends until the adversarial scheduler delivers
//!   a message to the node;
//! * [`NodeHandle::sleep`] suspends for a number of *virtual* clock ticks
//!   (see [`crate::clock`]) by arming an engine timer;
//! * [`NodeHandle::timeout`] races any future against a virtual deadline.
//!
//! The executor is deliberately minimal: single-threaded, `std`-only, no
//! `unsafe` (the no-op waker is built with the stable [`std::task::Wake`]
//! trait rather than `RawWaker`), and it polls each node future exactly once
//! per engine event addressed to that node. Leaf futures re-check their
//! readiness on every poll, so one poll per event is complete: a future only
//! returns `Pending` when the node is genuinely blocked on the network, and
//! only the network (scheduler picks, timer firings) can unblock it. All
//! nondeterminism therefore still flows through the
//! [`crate::Scheduler`] — async runs record and replay
//! byte-for-byte like state-machine runs, and an async protocol paired with
//! its hand-written twin produces identical [`RunReport`]s, [`SimStats`],
//! and network fingerprints under every scheduler.
//!
//! ```rust
//! use co_net::runtime::{AsyncRing, NodeFuture};
//! use co_net::{Budget, Outcome, Port, Pulse, RingSpec, SchedulerKind};
//!
//! // Each node: send one pulse clockwise, relay the first pulse received,
//! // consume the relayed pulse of its neighbour, and terminate.
//! let spec = RingSpec::oriented(vec![1, 2, 3]);
//! let mut ring: AsyncRing<Pulse, ()> =
//!     AsyncRing::new(spec.wiring(), SchedulerKind::Fifo.build(0), |_, h| {
//!         Box::pin(async move {
//!             h.send(Port::One, Pulse);
//!             let _ = h.recv().await;
//!             h.send(Port::One, Pulse);
//!             let _ = h.recv().await;
//!         }) as NodeFuture<()>
//!     });
//! let report = ring.run(Budget::default());
//! assert_eq!(report.outcome, Outcome::QuiescentTerminated);
//! assert_eq!(report.total_sent, 6); // 3 initial pulses + 3 relays
//! ```

use crate::clock::LatencyPlan;
use crate::engine::{Budget, EventCore, EventHandler, Observer, RunMetrics, RunReport, SimStats};
use crate::faults::{FaultPlan, FaultStats};
use crate::message::Message;
use crate::port::Port;
use crate::sched::{ReplayScheduler, Scheduler};
use crate::snapshot::Schedule;
use crate::topology::Wiring;
use crate::trace::Trace;
use std::cell::RefCell;
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// The boxed future type a node program compiles to.
///
/// `Output = Out` is the node's final decision: returning from the future
/// *terminates* the node (it ignores all further deliveries and never sends
/// again, like [`Protocol::is_terminated`](crate::Protocol::is_terminated)).
/// Stabilizing algorithms never return; they report interim decisions with
/// [`NodeHandle::publish`] and block forever on the next `recv`.
pub type NodeFuture<Out> = Pin<Box<dyn Future<Output = Out>>>;

/// Shared per-node state between the executor and the node's futures.
struct NodeCell<M: Message, Out> {
    /// Messages delivered to the node but not yet consumed by `recv`.
    inbox: VecDeque<(usize, M)>,
    /// Messages sent by the node during the current poll, in call order.
    outbox: Vec<(usize, M)>,
    /// Timers armed during the current poll: `(delay, token)`.
    timer_arms: Vec<(u64, u64)>,
    /// Tokens of timers that have fired but not yet been observed.
    fired: HashSet<u64>,
    /// Next timer token to hand out.
    next_token: u64,
    /// Latest interim decision (stabilizing output).
    published: Option<Out>,
    /// Final decision — set when the node future returns.
    done: Option<Out>,
}

impl<M: Message, Out> NodeCell<M, Out> {
    fn new() -> NodeCell<M, Out> {
        NodeCell {
            inbox: VecDeque::new(),
            outbox: Vec::new(),
            timer_arms: Vec::new(),
            fired: HashSet::new(),
            next_token: 0,
            published: None,
            done: None,
        }
    }
}

/// Capability handle owned by a node's async program.
///
/// Cheap to clone; all clones refer to the same node. The handle is the
/// async counterpart of [`Context`](crate::Context) plus the blocking
/// primitives that only make sense with suspendable control flow.
pub struct NodeHandle<M: Message, Out> {
    node: usize,
    cell: Rc<RefCell<NodeCell<M, Out>>>,
}

impl<M: Message, Out> Clone for NodeHandle<M, Out> {
    fn clone(&self) -> Self {
        NodeHandle {
            node: self.node,
            cell: Rc::clone(&self.cell),
        }
    }
}

impl<M: Message, Out> fmt::Debug for NodeHandle<M, Out> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeHandle")
            .field("node", &self.node)
            .finish()
    }
}

impl<M: Message, Out: Clone> NodeHandle<M, Out> {
    /// The index of this node (opaque to paper algorithms; exposed for
    /// instrumentation, like [`Context::node`](crate::Context::node)).
    #[must_use]
    pub fn node(&self) -> usize {
        self.node
    }

    /// Sends `msg` out of `port`.
    ///
    /// Buffered like [`Context::send`](crate::Context::send): the engine
    /// enqueues all sends of the current poll, in call order, when the
    /// event returns.
    pub fn send(&self, port: Port, msg: M) {
        self.cell.borrow_mut().outbox.push((port.index(), msg));
    }

    /// Resolves to the next `(port, message)` delivered to this node.
    #[must_use]
    pub fn recv(&self) -> Recv<M, Out> {
        Recv {
            cell: Rc::clone(&self.cell),
        }
    }

    /// Suspends for `ticks` virtual clock ticks.
    ///
    /// In an untimed run (no latency plan) the virtual clock only advances
    /// when the network goes quiescent, so a sleeping node effectively
    /// yields until every in-flight message has been delivered.
    #[must_use]
    pub fn sleep(&self, ticks: u64) -> Sleep<M, Out> {
        Sleep {
            cell: Rc::clone(&self.cell),
            ticks,
            token: None,
        }
    }

    /// Races `future` against a virtual deadline `ticks` from now:
    /// `Some(output)` if the future wins, `None` on timeout.
    #[must_use]
    pub fn timeout<F: Future + Unpin>(&self, ticks: u64, future: F) -> Timeout<F, M, Out> {
        Timeout {
            inner: future,
            sleep: self.sleep(ticks),
        }
    }

    /// [`NodeHandle::recv`] bounded by a virtual deadline.
    #[must_use]
    pub fn recv_timeout(&self, ticks: u64) -> Timeout<Recv<M, Out>, M, Out> {
        self.timeout(ticks, self.recv())
    }

    /// Reports an interim decision without terminating.
    ///
    /// This is how stabilizing algorithms (which never return from their
    /// future) expose their current output; the latest published value is
    /// what [`AsyncRing::outputs`] reports until the future returns.
    pub fn publish(&self, out: Out) {
        self.cell.borrow_mut().published = Some(out);
    }
}

/// Future returned by [`NodeHandle::recv`].
pub struct Recv<M: Message, Out> {
    cell: Rc<RefCell<NodeCell<M, Out>>>,
}

impl<M: Message, Out> fmt::Debug for Recv<M, Out> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recv").finish_non_exhaustive()
    }
}

impl<M: Message, Out> Future for Recv<M, Out> {
    type Output = (Port, M);

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<(Port, M)> {
        match self.cell.borrow_mut().inbox.pop_front() {
            Some((port, msg)) => Poll::Ready((Port::from_index(port), msg)),
            None => Poll::Pending,
        }
    }
}

/// Future returned by [`NodeHandle::sleep`].
pub struct Sleep<M: Message, Out> {
    cell: Rc<RefCell<NodeCell<M, Out>>>,
    ticks: u64,
    /// Token of the armed engine timer; `None` until first polled.
    token: Option<u64>,
}

impl<M: Message, Out> fmt::Debug for Sleep<M, Out> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sleep")
            .field("ticks", &self.ticks)
            .field("token", &self.token)
            .finish_non_exhaustive()
    }
}

impl<M: Message, Out> Future for Sleep<M, Out> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let ticks = self.ticks;
        match self.token {
            None => {
                // Arm lazily on first poll so a sleep constructed but never
                // awaited (e.g. the loser of a `timeout` race) costs nothing.
                let mut cell = self.cell.borrow_mut();
                let token = cell.next_token;
                cell.next_token += 1;
                cell.timer_arms.push((ticks, token));
                drop(cell);
                self.token = Some(token);
                Poll::Pending
            }
            Some(token) => {
                if self.cell.borrow_mut().fired.remove(&token) {
                    Poll::Ready(())
                } else {
                    Poll::Pending
                }
            }
        }
    }
}

/// Future returned by [`NodeHandle::timeout`]: `Some(out)` if `F` completed
/// before the deadline, `None` otherwise. The inner future is polled first,
/// so a result that is ready exactly at the deadline wins the race.
#[derive(Debug)]
pub struct Timeout<F, M: Message, Out> {
    inner: F,
    sleep: Sleep<M, Out>,
}

impl<F: Future + Unpin, M: Message, Out> Future for Timeout<F, M, Out> {
    type Output = Option<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<F::Output>> {
        let this = self.get_mut();
        if let Poll::Ready(v) = Pin::new(&mut this.inner).poll(cx) {
            return Poll::Ready(Some(v));
        }
        match Pin::new(&mut this.sleep).poll(cx) {
            Poll::Ready(()) => Poll::Ready(None),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// A waker that does nothing: the executor re-polls on engine events, not
/// on wake-ups. Built via the stable [`Wake`] trait — no `RawWaker`, no
/// `unsafe` — which keeps the crate `#![forbid(unsafe_code)]` and MSRV-clean.
struct NoopWake;

impl Wake for NoopWake {
    fn wake(self: Arc<Self>) {}
}

/// The engine-side half of the executor: adapts the per-node futures to the
/// engine's [`EventHandler`].
struct AsyncNodes<M: Message, Out> {
    cells: Vec<Rc<RefCell<NodeCell<M, Out>>>>,
    futures: Vec<Option<NodeFuture<Out>>>,
    waker: Waker,
}

impl<M: Message, Out: Clone> AsyncNodes<M, Out> {
    /// Polls `node`'s future once; records its decision if it returned.
    fn poll_node(&mut self, node: usize) {
        let Some(future) = self.futures[node].as_mut() else {
            return;
        };
        let mut cx = Context::from_waker(&self.waker);
        if let Poll::Ready(out) = future.as_mut().poll(&mut cx) {
            self.cells[node].borrow_mut().done = Some(out);
            self.futures[node] = None;
        }
    }

    /// Moves the node's buffered sends into the engine outbox.
    fn flush(&mut self, node: usize, outbox: &mut Vec<(usize, M)>) {
        outbox.append(&mut self.cells[node].borrow_mut().outbox);
    }
}

impl<M: Message, Out: Clone + fmt::Debug> EventHandler<M> for AsyncNodes<M, Out> {
    fn on_start(&mut self, node: usize, _degree: usize, outbox: &mut Vec<(usize, M)>) {
        self.poll_node(node);
        self.flush(node, outbox);
    }

    fn on_message(
        &mut self,
        node: usize,
        _degree: usize,
        port: usize,
        msg: M,
        outbox: &mut Vec<(usize, M)>,
    ) {
        self.cells[node].borrow_mut().inbox.push_back((port, msg));
        self.poll_node(node);
        self.flush(node, outbox);
    }

    fn is_terminated(&self, node: usize) -> bool {
        self.cells[node].borrow().done.is_some()
    }

    fn on_timer(&mut self, node: usize, _degree: usize, token: u64, outbox: &mut Vec<(usize, M)>) {
        self.cells[node].borrow_mut().fired.insert(token);
        self.poll_node(node);
        self.flush(node, outbox);
    }

    fn drain_timers(&mut self, node: usize, sink: &mut Vec<(u64, u64)>) {
        sink.append(&mut self.cells[node].borrow_mut().timer_arms);
    }
}

/// Discrete-event simulation of a ring of `async fn` node programs.
///
/// The async twin of [`Simulation`](crate::Simulation): the same
/// [`EventCore`] underneath, the same schedulers, faults, budgets,
/// record/replay, tracing, and metrics — only the node representation
/// differs. See the [module docs](self) for the execution model.
pub struct AsyncRing<M: Message, Out: Clone + fmt::Debug> {
    core: EventCore<M, Wiring>,
    nodes: AsyncNodes<M, Out>,
}

impl<M: Message, Out: Clone + fmt::Debug> AsyncRing<M, Out> {
    /// Creates a ring where node `i`'s program is `spawn(i, handle)`.
    ///
    /// The spawn function typically captures per-node inputs (e.g. the ID
    /// assignment) and moves the handle into the returned future:
    ///
    /// ```rust
    /// # use co_net::runtime::{AsyncRing, NodeFuture};
    /// # use co_net::{Port, Pulse, RingSpec, SchedulerKind};
    /// let ids = vec![3u64, 1, 2];
    /// let spec = RingSpec::oriented(ids.clone());
    /// let ring: AsyncRing<Pulse, u64> =
    ///     AsyncRing::new(spec.wiring(), SchedulerKind::Fifo.build(0), |i, h| {
    ///         let id = ids[i];
    ///         Box::pin(async move {
    ///             h.send(Port::One, Pulse);
    ///             let _ = h.recv().await;
    ///             id
    ///         }) as NodeFuture<u64>
    ///     });
    /// ```
    #[must_use]
    pub fn new<F>(wiring: Wiring, scheduler: Box<dyn Scheduler>, mut spawn: F) -> AsyncRing<M, Out>
    where
        F: FnMut(usize, NodeHandle<M, Out>) -> NodeFuture<Out>,
    {
        let n = wiring.len();
        let cells: Vec<Rc<RefCell<NodeCell<M, Out>>>> = (0..n)
            .map(|_| Rc::new(RefCell::new(NodeCell::new())))
            .collect();
        let futures = cells
            .iter()
            .enumerate()
            .map(|(node, cell)| {
                let handle = NodeHandle {
                    node,
                    cell: Rc::clone(cell),
                };
                Some(spawn(node, handle))
            })
            .collect();
        AsyncRing {
            core: EventCore::new(wiring, scheduler),
            nodes: AsyncNodes {
                cells,
                futures,
                waker: Waker::from(Arc::new(NoopWake)),
            },
        }
    }

    /// Installs a seeded per-channel latency plan (virtual time). Must be
    /// called before the run starts; see
    /// [`Simulation::set_latency`](crate::Simulation::set_latency).
    pub fn set_latency(&mut self, plan: LatencyPlan) {
        self.core.set_latency(plan);
    }

    /// Installs a plan of model-violating channel faults (experiment E11).
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.core.set_faults(faults);
    }

    /// Counters of faults actually applied so far.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.core.fault_stats()
    }

    /// Enables event tracing (unbounded if `cap` is `None`).
    pub fn enable_trace(&mut self, cap: Option<usize>) {
        self.core.enable_trace(cap);
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.core.trace()
    }

    /// Enables the O(1) run-summary metrics collector.
    pub fn enable_metrics(&mut self) {
        self.core.enable_metrics();
    }

    /// The collected run metrics, if enabled.
    #[must_use]
    pub fn metrics(&self) -> Option<&RunMetrics> {
        self.core.metrics()
    }

    /// Attaches an engine-level [`Observer`] for the rest of the run.
    pub fn attach_observer(&mut self, observer: Box<dyn Observer>) {
        self.core.attach_observer(observer);
    }

    /// Runs every node future's first poll (in node order). Idempotent.
    pub fn start(&mut self) {
        self.core.start(&mut self.nodes);
    }

    /// Delivers one event chosen by the scheduler; `false` when quiescent.
    pub fn step(&mut self) -> bool {
        self.core.step(&mut self.nodes).is_some()
    }

    /// Runs until quiescence or budget exhaustion.
    pub fn run(&mut self, budget: Budget) -> RunReport {
        self.start();
        let mut executed: u64 = 0;
        while executed < budget.max_steps {
            if !self.step() {
                break;
            }
            executed += 1;
        }
        self.core.report()
    }

    /// Starts recording the sequence of channel picks as a [`Schedule`].
    pub fn enable_schedule_recording(&mut self) {
        self.core.enable_schedule_recording();
    }

    /// The schedule recorded so far, if recording was enabled.
    #[must_use]
    pub fn recorded_schedule(&self) -> Option<Schedule> {
        self.core.recorded_schedule()
    }

    /// Runs to completion while recording the schedule; see
    /// [`Simulation::run_recorded`](crate::Simulation::run_recorded).
    pub fn run_recorded(&mut self, budget: Budget) -> (RunReport, Schedule) {
        self.enable_schedule_recording();
        let report = self.run(budget);
        let schedule = self.recorded_schedule().expect("recording just enabled");
        (report, schedule)
    }

    /// Replays a recorded [`Schedule`] (deterministic record/replay); see
    /// [`Simulation::replay`](crate::Simulation::replay).
    pub fn replay(&mut self, schedule: &Schedule, budget: Budget) -> RunReport {
        self.core
            .set_scheduler(Box::new(ReplayScheduler::new(schedule.picks().to_vec())));
        self.run(budget)
    }

    /// Every node's current output: its final decision if the future
    /// returned, else the latest [`NodeHandle::publish`]ed value.
    #[must_use]
    pub fn outputs(&self) -> Vec<Option<Out>> {
        self.nodes
            .cells
            .iter()
            .map(|cell| {
                let cell = cell.borrow();
                cell.done.clone().or_else(|| cell.published.clone())
            })
            .collect()
    }

    /// Whether the given node's future has returned.
    #[must_use]
    pub fn is_terminated(&self, node: usize) -> bool {
        self.nodes.cells[node].borrow().done.is_some()
    }

    /// Whether no messages are in transit.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.core.is_quiescent()
    }

    /// Number of messages currently in transit.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.core.in_flight()
    }

    /// Aggregate counters.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        self.core.stats()
    }

    /// The current virtual time (0 forever in untimed runs).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.core.now()
    }

    /// Number of armed timers that have not fired yet.
    #[must_use]
    pub fn pending_timers(&self) -> usize {
        self.core.pending_timers()
    }

    /// Network-level fingerprint; see
    /// [`EventCore::net_fingerprint`](crate::EventCore::net_fingerprint).
    #[must_use]
    pub fn net_fingerprint(&self) -> u64 {
        self.core.net_fingerprint()
    }

    /// The network wiring.
    #[must_use]
    pub fn wiring(&self) -> &Wiring {
        self.core.topology()
    }
}

impl<M: Message, Out: Clone + fmt::Debug> fmt::Debug for AsyncRing<M, Out> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsyncRing")
            .field("n", &self.wiring().len())
            .field("in_flight", &self.in_flight())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LatencyModel;
    use crate::engine::Outcome;
    use crate::message::Pulse;
    use crate::sched::SchedulerKind;
    use crate::topology::RingSpec;

    /// Async twin of `sim::tests::Ticker`: sends `budget` pulses clockwise,
    /// one per received pulse, then terminates.
    fn ticker_ring(n: usize, budget: u64, kind: SchedulerKind, seed: u64) -> AsyncRing<Pulse, u64> {
        let spec = RingSpec::oriented((1..=n as u64).collect());
        AsyncRing::new(spec.wiring(), kind.build(seed), move |_, h| {
            Box::pin(async move {
                if budget > 0 {
                    h.send(Port::One, Pulse);
                }
                let mut seen = 0u64;
                while seen < budget {
                    let _ = h.recv().await;
                    seen += 1;
                    if seen < budget {
                        h.send(Port::One, Pulse);
                    }
                }
                seen
            }) as NodeFuture<u64>
        })
    }

    #[test]
    fn async_tickers_reach_quiescent_termination() {
        let mut ring = ticker_ring(4, 5, SchedulerKind::Fifo, 0);
        let report = ring.run(Budget::default());
        assert_eq!(report.outcome, Outcome::QuiescentTerminated);
        assert_eq!(report.total_sent, 4 + 4 * 4);
        for i in 0..4 {
            assert!(ring.is_terminated(i));
        }
        assert_eq!(ring.outputs(), vec![Some(5); 4]);
    }

    #[test]
    fn async_record_replay_is_byte_identical() {
        for kind in SchedulerKind::ALL {
            let mut original = ticker_ring(4, 6, kind, 17);
            let (report, schedule) = original.run_recorded(Budget::default());
            let mut replayed = ticker_ring(4, 6, kind, 999);
            let replay_report = replayed.replay(&schedule, Budget::default());
            assert_eq!(report, replay_report, "{kind}");
            assert_eq!(original.stats(), replayed.stats(), "{kind}");
            assert_eq!(original.outputs(), replayed.outputs(), "{kind}");
            assert_eq!(
                original.net_fingerprint(),
                replayed.net_fingerprint(),
                "{kind}"
            );
        }
    }

    #[test]
    fn sleep_fires_after_quiescence_in_untimed_runs() {
        // One node: sleep 10 ticks, then decide. No messages at all, so the
        // engine must jump the clock to the timer deadline.
        let spec = RingSpec::oriented(vec![1]);
        let mut ring: AsyncRing<Pulse, u64> =
            AsyncRing::new(spec.wiring(), SchedulerKind::Fifo.build(0), |_, h| {
                Box::pin(async move {
                    h.sleep(10).await;
                    42u64
                }) as NodeFuture<u64>
            });
        let report = ring.run(Budget::default());
        assert_eq!(report.outcome, Outcome::QuiescentTerminated);
        assert_eq!(ring.outputs(), vec![Some(42)]);
        assert_eq!(ring.now(), 10);
        assert_eq!(ring.stats().timer_fires, 1);
        assert_eq!(ring.pending_timers(), 0);
    }

    #[test]
    fn recv_timeout_times_out_when_ring_is_silent() {
        // Node 0 waits for a message that never comes; its timeout elapses.
        let spec = RingSpec::oriented(vec![1, 2]);
        let mut ring: AsyncRing<Pulse, bool> =
            AsyncRing::new(spec.wiring(), SchedulerKind::Fifo.build(0), |i, h| {
                Box::pin(async move {
                    if i == 0 {
                        h.recv_timeout(5).await.is_some()
                    } else {
                        false
                    }
                }) as NodeFuture<bool>
            });
        let report = ring.run(Budget::default());
        assert_eq!(report.outcome, Outcome::QuiescentTerminated);
        assert_eq!(ring.outputs()[0], Some(false));
    }

    #[test]
    fn recv_timeout_wins_when_a_message_arrives_first() {
        let spec = RingSpec::oriented(vec![1, 2]);
        let mut ring: AsyncRing<Pulse, bool> =
            AsyncRing::new(spec.wiring(), SchedulerKind::Fifo.build(0), |i, h| {
                Box::pin(async move {
                    if i == 0 {
                        h.recv_timeout(1_000).await.is_some()
                    } else {
                        h.send(Port::Zero, Pulse); // port Zero of node 1 → node 0
                        true
                    }
                }) as NodeFuture<bool>
            });
        let report = ring.run(Budget::default());
        assert_eq!(report.outcome, Outcome::QuiescentTerminated);
        assert_eq!(ring.outputs()[0], Some(true));
    }

    #[test]
    fn published_outputs_surface_without_termination() {
        let spec = RingSpec::oriented(vec![1]);
        let mut ring: AsyncRing<Pulse, &'static str> =
            AsyncRing::new(spec.wiring(), SchedulerKind::Fifo.build(0), |_, h| {
                Box::pin(async move {
                    h.publish("interim");
                    let _ = h.recv().await; // never resolves: ring is silent
                    "final"
                }) as NodeFuture<&'static str>
            });
        let report = ring.run(Budget::default());
        // Never terminated — publish is not termination.
        assert_eq!(report.outcome, Outcome::Quiescent);
        assert_eq!(ring.outputs(), vec![Some("interim")]);
        assert!(!ring.is_terminated(0));
    }

    #[test]
    fn latency_reorders_but_stays_deterministic() {
        let plan = LatencyPlan::new(LatencyModel::Uniform { min: 1, max: 9 }, 7);
        let run = |seed| {
            let mut ring = ticker_ring(4, 6, SchedulerKind::Latency, seed);
            ring.set_latency(plan.clone());
            let report = ring.run(Budget::default());
            (report, ring.net_fingerprint(), ring.now())
        };
        let (r1, fp1, now1) = run(5);
        let (r2, fp2, now2) = run(5);
        assert_eq!(r1, r2);
        assert_eq!(fp1, fp2);
        assert_eq!(now1, now2);
        assert!(now1 > 0, "uniform latency advances the clock");
    }
}
