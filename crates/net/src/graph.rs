//! Topology analysis: 2-edge-connectivity.
//!
//! Censor-Hillel, Cohen, Gelles & Sela proved that nontrivial
//! content-oblivious computation is possible **iff** the network is
//! 2-edge-connected (no bridges): a pulse crossing a bridge carries no
//! information about *which* of the far side's algorithms sent it, and a
//! single cut edge cannot carry the echo structure their compiler needs.
//! Rings are exactly the minimal 2-edge-connected graphs, which is why the
//! paper focuses on them (§1).
//!
//! This module provides a general undirected multigraph with bridge
//! detection (Tarjan's low-link algorithm, iterative), used by the harness
//! to validate topologies and to document the boundary of the model:
//! [`RingSpec`](crate::RingSpec) wirings are always 2-edge-connected; a
//! path is not.

/// An undirected multigraph on vertices `0..n`, allowing parallel edges and
/// self-loops (both occur in degenerate rings).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MultiGraph {
    n: usize,
    /// Edge list; parallel edges are distinct entries.
    edges: Vec<(usize, usize)>,
}

impl MultiGraph {
    /// Creates a graph with `n` vertices and no edges.
    #[must_use]
    pub fn new(n: usize) -> MultiGraph {
        MultiGraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Builds the cycle graph `C_n` (a ring), using a double edge for
    /// `n = 2` and a self-loop for `n = 1` — matching
    /// [`RingSpec::wiring`](crate::RingSpec::wiring).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn ring(n: usize) -> MultiGraph {
        assert!(n > 0, "a ring needs at least one node");
        let mut g = MultiGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    /// Builds the path graph `P_n` (which has `n − 1` bridges).
    #[must_use]
    pub fn path(n: usize) -> MultiGraph {
        let mut g = MultiGraph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    /// Adds an undirected edge (parallel edges and self-loops allowed).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        self.edges.push((u, v));
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges (parallel edges counted separately).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The endpoints of edge `e`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `e >= self.edge_count()`.
    #[must_use]
    pub fn edge(&self, e: usize) -> (usize, usize) {
        self.edges[e]
    }

    /// Degree of a vertex (self-loops count twice, as usual).
    #[must_use]
    pub fn degree(&self, v: usize) -> usize {
        self.edges
            .iter()
            .map(|&(a, b)| usize::from(a == v) + usize::from(b == v))
            .sum()
    }

    /// Whether every vertex is reachable from vertex 0 (vacuously true for
    /// the empty graph).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let adj = self.adjacency();
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &(v, _) in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// Adjacency lists carrying edge indices (needed to distinguish
    /// parallel edges during bridge detection).
    fn adjacency(&self) -> Vec<Vec<(usize, usize)>> {
        let mut adj = vec![Vec::new(); self.n];
        for (idx, &(u, v)) in self.edges.iter().enumerate() {
            adj[u].push((v, idx));
            if u != v {
                adj[v].push((u, idx));
            }
        }
        adj
    }

    /// The bridges (cut edges) of the graph, as indices into the edge list,
    /// via an iterative Tarjan low-link traversal. A parallel edge is never
    /// a bridge; a self-loop is never a bridge.
    #[must_use]
    pub fn bridges(&self) -> Vec<usize> {
        let adj = self.adjacency();
        let mut disc = vec![usize::MAX; self.n];
        let mut low = vec![usize::MAX; self.n];
        let mut timer = 0usize;
        let mut bridges = Vec::new();

        for root in 0..self.n {
            if disc[root] != usize::MAX {
                continue;
            }
            // Iterative DFS frame: (vertex, parent edge index, next child
            // position in adj[vertex]).
            let mut stack: Vec<(usize, usize, usize)> = vec![(root, usize::MAX, 0)];
            disc[root] = timer;
            low[root] = timer;
            timer += 1;
            while let Some(top) = stack.last_mut() {
                let (u, parent_edge) = (top.0, top.1);
                if top.2 < adj[u].len() {
                    let (v, edge) = adj[u][top.2];
                    top.2 += 1;
                    if edge == parent_edge || v == u {
                        continue; // don't re-use the tree edge; skip loops
                    }
                    if disc[v] == usize::MAX {
                        disc[v] = timer;
                        low[v] = timer;
                        timer += 1;
                        stack.push((v, edge, 0));
                    } else {
                        low[u] = low[u].min(disc[v]);
                    }
                } else {
                    stack.pop();
                    if let Some(&(p, _, _)) = stack.last() {
                        low[p] = low[p].min(low[u]);
                        if low[u] > disc[p] {
                            bridges.push(parent_edge);
                        }
                    }
                }
            }
        }
        bridges.sort_unstable();
        bridges
    }

    /// Whether the graph is 2-edge-connected: connected, at least one
    /// vertex, and bridgeless — the exact precondition for nontrivial
    /// content-oblivious computation.
    #[must_use]
    pub fn is_two_edge_connected(&self) -> bool {
        self.n >= 1 && self.is_connected() && self.bridges().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rings_are_two_edge_connected() {
        for n in [1usize, 2, 3, 5, 16] {
            let g = MultiGraph::ring(n);
            assert!(g.is_two_edge_connected(), "C_{n}");
            assert!(g.bridges().is_empty(), "C_{n}");
        }
    }

    #[test]
    fn paths_are_all_bridges() {
        for n in [2usize, 3, 7] {
            let g = MultiGraph::path(n);
            assert!(!g.is_two_edge_connected(), "P_{n}");
            assert_eq!(g.bridges().len(), n - 1, "P_{n}");
        }
    }

    #[test]
    fn single_vertex_self_loop() {
        let g = MultiGraph::ring(1);
        assert_eq!(g.degree(0), 2);
        assert!(g.is_two_edge_connected());
    }

    #[test]
    fn parallel_edges_kill_the_bridge() {
        // A single edge between two vertices is a bridge...
        let mut g = MultiGraph::new(2);
        g.add_edge(0, 1);
        assert_eq!(g.bridges(), vec![0]);
        // ...but doubling it (the n = 2 "ring") removes it.
        g.add_edge(0, 1);
        assert!(g.bridges().is_empty());
        assert!(g.is_two_edge_connected());
    }

    #[test]
    fn barbell_has_one_bridge() {
        // Two triangles joined by one edge: exactly that edge is a bridge.
        let mut g = MultiGraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 3);
        g.add_edge(2, 3); // the bridge, edge index 6
        assert_eq!(g.bridges(), vec![6]);
        assert!(!g.is_two_edge_connected());
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = MultiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert!(!g.is_connected());
        assert!(!g.is_two_edge_connected());
    }

    #[test]
    fn theta_graph_bridgeless() {
        // Two vertices joined by three parallel paths.
        let mut g = MultiGraph::new(5);
        g.add_edge(0, 1); // direct
        g.add_edge(0, 2);
        g.add_edge(2, 1);
        g.add_edge(0, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 1);
        assert!(g.is_two_edge_connected());
    }

    #[test]
    fn degree_counts_loops_twice() {
        let mut g = MultiGraph::new(2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 1);
    }
}
