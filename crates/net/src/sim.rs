//! Discrete-event simulation of an asynchronous, fully defective network.
//!
//! The simulator realises the paper's model exactly:
//!
//! * nodes are **event-driven**: they act once at start-up and thereafter
//!   only when a message is delivered to them ([`Protocol`]);
//! * channels are **FIFO per channel** with adversarial finite delays — at
//!   every step the [`Scheduler`] picks which non-empty
//!   channel delivers its head message;
//! * message **content is irrelevant**: for content-oblivious algorithms the
//!   message type is [`Pulse`](crate::Pulse), which has no content;
//! * a **terminated** node ignores all further messages and never sends
//!   again (the simulator enforces this; such deliveries void quiescent
//!   termination and are reported in the [`RunReport`]).
//!
//! [`Simulation`] is a thin, `Port`-typed facade over the generic
//! [`EventCore`] (see the [`engine`](crate::engine)
//! module): the core owns queues, scheduler dispatch, faults, accounting,
//! and event emission, while this facade pins the topology to the two-port
//! ring [`Wiring`] and dispatches events into [`Protocol`] nodes.
//!
//! The run loop is exposed one step at a time ([`Simulation::step`]) so that
//! invariant monitors (executable Lemmas 6–12 in `co-core`) can inspect the
//! global state between events; for whole runs, attach a [`SimObserver`]
//! via [`Simulation::run_observed`].

use crate::engine::{
    CoreSnapshot, EngineError, EngineStep, EventCore, EventHandler, Observer, QueueBackend,
    RunMetrics,
};
use crate::faults::{FaultPlan, FaultStats};
use crate::message::{Message, UnitMessage};
use crate::port::{Direction, Port};
use crate::sched::{ReplayScheduler, Scheduler};
use crate::snapshot::{Fingerprint, Schedule, Snapshot};
use crate::topology::{ChannelId, NodeIndex, Wiring};
use crate::trace::Trace;
use std::fmt;
use std::marker::PhantomData;

pub use crate::engine::{Budget, Outcome, RunReport, SimStats};

/// An event-driven node program.
///
/// Implementations correspond to the per-node pseudocode of the paper's
/// algorithms. A node may send any number of messages during `on_start` and
/// each `on_message`; it can never block, read clocks, or observe anything
/// but its own state and the in-port of the delivered message.
pub trait Protocol<M: Message> {
    /// The node's decision (e.g. `Leader` / `NonLeader`), if any yet.
    type Output: Clone + fmt::Debug;

    /// Called once before any delivery; the paper's "act once right in the
    /// beginning of the computation".
    fn on_start(&mut self, ctx: &mut Context<'_, M>);

    /// Called when a message is delivered to `port`.
    fn on_message(&mut self, port: Port, msg: M, ctx: &mut Context<'_, M>);

    /// Called (batch mode only) to deliver a run of `count` identical
    /// messages in one fused event: the closed form of `count` consecutive
    /// [`Protocol::on_message`] calls for the same `(port, msg)`.
    ///
    /// Return `true` only if the node's state, output, and buffered sends
    /// are exactly what the per-pulse calls would have produced **and** the
    /// node cannot terminate strictly before the run's last pulse. Decline
    /// (`false`) *without mutating anything* otherwise — the simulator then
    /// delivers the same run pulse by pulse. The default declines, so
    /// protocols without a closed form behave identically under batch mode.
    fn on_message_run(
        &mut self,
        port: Port,
        msg: &M,
        count: u64,
        ctx: &mut RunContext<'_, M>,
    ) -> bool {
        let _ = (port, msg, count, ctx);
        false
    }

    /// Whether the node has entered a terminating state.
    ///
    /// Once `true`, the simulator never calls [`Protocol::on_message`] again:
    /// the node ignores all incoming messages and sends no new ones, matching
    /// the paper's definition of (process) termination. Defaults to `false`
    /// for stabilizing algorithms, which never terminate.
    fn is_terminated(&self) -> bool {
        false
    }

    /// The node's current output, if decided.
    fn output(&self) -> Option<Self::Output>;
}

/// Send capability handed to a [`Protocol`] during an event.
///
/// Sends are buffered and enqueued by the simulator when the event handler
/// returns, in call order (preserving per-channel FIFO). The buffer is the
/// engine's raw `(port index, message)` outbox; this context is the typed
/// rim around it.
#[derive(Debug)]
pub struct Context<'a, M: Message> {
    node: NodeIndex,
    outbox: &'a mut Vec<(usize, M)>,
}

impl<'a, M: Message> Context<'a, M> {
    pub(crate) fn new_internal(node: NodeIndex, outbox: &'a mut Vec<(usize, M)>) -> Context<'a, M> {
        Context { node, outbox }
    }

    /// Creates a context that buffers sends into `outbox` without any
    /// attached network.
    ///
    /// This is for harnesses that interpose on a protocol's sends — e.g.
    /// the universal ring simulator, which feeds a protocol's events
    /// manually and re-encodes its outgoing messages as pulse trains.
    /// Within a [`Simulation`] the context is provided by the engine;
    /// ordinary protocol code never needs this.
    #[must_use]
    pub fn buffered(node: NodeIndex, outbox: &'a mut Vec<(usize, M)>) -> Context<'a, M> {
        Context { node, outbox }
    }

    /// Sends `msg` out of `port`.
    pub fn send(&mut self, port: Port, msg: M) {
        self.outbox.push((port.index(), msg));
    }

    /// The index of the node executing the event (positions are opaque to
    /// paper algorithms; exposed for instrumentation and baselines).
    #[must_use]
    pub fn node(&self) -> NodeIndex {
        self.node
    }
}

/// Send buffer handed to [`Protocol::on_message_run`] — the run-compressed
/// sibling of [`Context`].
///
/// Each [`RunContext::send_run`] buffers a *run* of identical messages; the
/// simulator assigns them the exact consecutive sequence numbers the
/// per-pulse sends would have received, in call order.
#[derive(Debug)]
pub struct RunContext<'a, M: Message> {
    node: NodeIndex,
    outbox: &'a mut Vec<(usize, M, u64)>,
}

impl<'a, M: Message> RunContext<'a, M> {
    pub(crate) fn new_internal(
        node: NodeIndex,
        outbox: &'a mut Vec<(usize, M, u64)>,
    ) -> RunContext<'a, M> {
        RunContext { node, outbox }
    }

    /// Sends `count` copies of `msg` out of `port` (a no-op when
    /// `count == 0`).
    pub fn send_run(&mut self, port: Port, msg: M, count: u64) {
        if count > 0 {
            self.outbox.push((port.index(), msg, count));
        }
    }

    /// The index of the node executing the event.
    #[must_use]
    pub fn node(&self) -> NodeIndex {
        self.node
    }
}

/// One delivery, as reported by [`Simulation::step`] — the `Port`-typed view
/// of the engine's [`EngineStep`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StepInfo {
    /// The channel that delivered.
    pub channel: ChannelId,
    /// The receiving node.
    pub node: NodeIndex,
    /// The in-port the message arrived at.
    pub port: Port,
    /// Global send sequence number of the delivered message.
    pub seq: u64,
    /// Direction tag of the channel, if any.
    pub direction: Option<Direction>,
    /// Whether the receiver had already terminated (message ignored).
    pub ignored: bool,
    /// Virtual delivery time (always 0 without a latency plan).
    pub at: u64,
}

impl StepInfo {
    fn from_engine(step: EngineStep) -> StepInfo {
        StepInfo {
            channel: ChannelId::from_index(step.channel),
            node: step.node,
            port: Port::from_index(step.port),
            seq: step.seq,
            direction: step.direction,
            ignored: step.ignored,
            at: step.at,
        }
    }
}

/// A full checkpoint of a [`Simulation`]: engine state plus node states.
///
/// Produced by [`Simulation::snapshot`] (which requires the protocol to
/// implement [`Snapshot`]) and consumed by [`Simulation::restore`]. The
/// pair turns a simulation into a branchable value: exhaustive exploration
/// restores the same checkpoint once per ready channel and fans out with
/// [`Simulation::step_channel`].
pub struct SimSnapshot<M: Message, P: Snapshot> {
    core: CoreSnapshot<M>,
    nodes: Vec<P::State>,
}

impl<M: Message, P: Snapshot> Clone for SimSnapshot<M, P> {
    fn clone(&self) -> Self {
        SimSnapshot {
            core: self.core.clone(),
            nodes: self.nodes.clone(),
        }
    }
}

impl<M: Message, P: Snapshot> fmt::Debug for SimSnapshot<M, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimSnapshot")
            .field("core", &self.core)
            .field("nodes", &self.nodes)
            .finish()
    }
}

/// A whole-run spectator with access to the global simulation state.
///
/// Where the engine-level [`Observer`] sees the raw
/// event stream, a `SimObserver` is called *after* each delivery with the
/// full post-event [`Simulation`] — node states included — which is what
/// `co-core`'s invariant monitors (executable Lemmas 6–12) need.
///
/// Observers compose: `(A, B)` runs both, `Option<O>` runs if present,
/// `&mut O` forwards, and `()` observes nothing.
pub trait SimObserver<M: Message, P: Protocol<M>> {
    /// Called after every delivery with the post-event state.
    fn after_step(&mut self, sim: &Simulation<M, P>, step: &StepInfo);
}

impl<M: Message, P: Protocol<M>> SimObserver<M, P> for () {
    fn after_step(&mut self, _sim: &Simulation<M, P>, _step: &StepInfo) {}
}

impl<M: Message, P: Protocol<M>, O: SimObserver<M, P> + ?Sized> SimObserver<M, P> for &mut O {
    fn after_step(&mut self, sim: &Simulation<M, P>, step: &StepInfo) {
        (**self).after_step(sim, step);
    }
}

impl<M: Message, P: Protocol<M>, O: SimObserver<M, P>> SimObserver<M, P> for Option<O> {
    fn after_step(&mut self, sim: &Simulation<M, P>, step: &StepInfo) {
        if let Some(o) = self {
            o.after_step(sim, step);
        }
    }
}

impl<M: Message, P: Protocol<M>, A: SimObserver<M, P>, B: SimObserver<M, P>> SimObserver<M, P>
    for (A, B)
{
    fn after_step(&mut self, sim: &Simulation<M, P>, step: &StepInfo) {
        self.0.after_step(sim, step);
        self.1.after_step(sim, step);
    }
}

/// Adapts a closure to [`SimObserver`] for [`Simulation::run_with`].
struct HookObserver<F>(F);

impl<M: Message, P: Protocol<M>, F: FnMut(&Simulation<M, P>, &StepInfo)> SimObserver<M, P>
    for HookObserver<F>
{
    fn after_step(&mut self, sim: &Simulation<M, P>, step: &StepInfo) {
        (self.0)(sim, step);
    }
}

/// Adapts a `&mut [P]` node slice to the engine's [`EventHandler`].
struct RingHandler<'a, M: Message, P: Protocol<M>> {
    nodes: &'a mut [P],
    _msg: PhantomData<M>,
}

impl<M: Message, P: Protocol<M>> EventHandler<M> for RingHandler<'_, M, P> {
    fn on_start(&mut self, node: usize, _degree: usize, outbox: &mut Vec<(usize, M)>) {
        let mut ctx = Context::new_internal(node, outbox);
        self.nodes[node].on_start(&mut ctx);
    }

    fn on_message(
        &mut self,
        node: usize,
        _degree: usize,
        port: usize,
        msg: M,
        outbox: &mut Vec<(usize, M)>,
    ) {
        let mut ctx = Context::new_internal(node, outbox);
        self.nodes[node].on_message(Port::from_index(port), msg, &mut ctx);
    }

    fn on_message_run(
        &mut self,
        node: usize,
        _degree: usize,
        port: usize,
        msg: &M,
        count: u64,
        run_outbox: &mut Vec<(usize, M, u64)>,
    ) -> bool {
        let mut ctx = RunContext::new_internal(node, run_outbox);
        self.nodes[node].on_message_run(Port::from_index(port), msg, count, &mut ctx)
    }

    fn is_terminated(&self, node: usize) -> bool {
        self.nodes[node].is_terminated()
    }
}

/// Discrete-event simulation of a ring of [`Protocol`] nodes.
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct Simulation<M: Message, P: Protocol<M>> {
    core: EventCore<M, Wiring>,
    nodes: Vec<P>,
}

impl<M: Message, P: Protocol<M>> Simulation<M, P> {
    /// Creates a simulation over `wiring` with one protocol instance per node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the wiring's node count.
    #[must_use]
    pub fn new(wiring: Wiring, nodes: Vec<P>, scheduler: Box<dyn Scheduler>) -> Simulation<M, P> {
        assert_eq!(
            nodes.len(),
            wiring.len(),
            "one protocol instance per node required"
        );
        Simulation {
            core: EventCore::new(wiring, scheduler),
            nodes,
        }
    }

    /// Creates a simulation using the given queue storage backend.
    ///
    /// [`QueueBackend::Counter`] requires a [`UnitMessage`] payload (e.g.
    /// [`Pulse`](crate::Pulse)); it stores queued traffic as run-length
    /// counters instead of per-message envelopes, making thousand-node rings
    /// with millions of queued pulses cheap. Behaviour is identical to
    /// [`Simulation::new`] in every observable way — see
    /// `tests/backend_equivalence.rs`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the wiring's node count.
    #[must_use]
    pub fn with_backend(
        wiring: Wiring,
        nodes: Vec<P>,
        scheduler: Box<dyn Scheduler>,
        backend: QueueBackend,
    ) -> Simulation<M, P>
    where
        M: UnitMessage,
    {
        assert_eq!(
            nodes.len(),
            wiring.len(),
            "one protocol instance per node required"
        );
        Simulation {
            core: EventCore::with_backend(wiring, scheduler, backend),
            nodes,
        }
    }

    /// The queue storage backend in use.
    #[must_use]
    pub fn queue_backend(&self) -> QueueBackend {
        self.core.queue_backend()
    }

    /// Bytes of queued messages currently held by the engine's
    /// [`QueueStore`](crate::QueueStore).
    #[must_use]
    pub fn queue_bytes(&self) -> usize {
        self.core.queue_bytes()
    }

    /// High-water mark of [`Simulation::queue_bytes`] over the run so far.
    #[must_use]
    pub fn peak_queue_bytes(&self) -> usize {
        self.core.peak_queue_bytes()
    }

    fn handler(nodes: &mut [P]) -> RingHandler<'_, M, P> {
        RingHandler {
            nodes,
            _msg: PhantomData,
        }
    }

    /// Installs a plan of model-violating channel faults (experiment E11).
    ///
    /// The paper's model forbids drops and injections; use this to observe
    /// what that assumption buys. Must be called before the run starts.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.core.set_faults(faults);
    }

    /// Installs a seeded per-channel latency plan (virtual time).
    ///
    /// A degenerate all-zero plan is a no-op: the engine keeps its untimed
    /// fast path and every observable (scheduler picks, reports, stats,
    /// fingerprints) is bit-identical to a simulation without a plan. Must
    /// be called before the run starts.
    pub fn set_latency(&mut self, plan: crate::clock::LatencyPlan) {
        self.core.set_latency(plan);
    }

    /// Whether a non-degenerate latency plan is installed.
    #[must_use]
    pub fn latency_enabled(&self) -> bool {
        self.core.latency_enabled()
    }

    /// The current virtual time (0 forever in untimed runs).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.core.now()
    }

    /// Number of armed timers that have not fired yet.
    #[must_use]
    pub fn pending_timers(&self) -> usize {
        self.core.pending_timers()
    }

    /// Fingerprint of the network state only (queues, terminations, clock,
    /// timers) — no node states, so it is comparable across different
    /// representations of the same protocol (state machines vs
    /// [`crate::runtime`] futures).
    #[must_use]
    pub fn net_fingerprint(&self) -> u64 {
        self.core.net_fingerprint()
    }

    /// Enables or disables the scheduler's O(log C) indexed pick path
    /// (on by default). With it off every step uses the O(ready) scan
    /// `pick`; both paths are pick-for-pick identical.
    pub fn set_indexed_picks(&mut self, enabled: bool) {
        self.core.set_indexed_picks(enabled);
    }

    /// Whether the indexed pick path is being consulted.
    #[must_use]
    pub fn indexed_picks(&self) -> bool {
        self.core.indexed_picks()
    }

    /// Enables or disables run-batched macro-stepping for
    /// [`Simulation::run`]-family drivers (off by default).
    ///
    /// With batching on, a single transition may deliver an entire pulse
    /// run whenever no observer, fault horizon, latency timer, or budget
    /// boundary could distinguish the fused interleaving from per-pulse
    /// delivery; every such boundary falls back to per-pulse. Reports,
    /// stats, fingerprints, and recorded schedules are byte-identical
    /// either way.
    pub fn set_batch(&mut self, enabled: bool) {
        self.core.set_batch(enabled);
    }

    /// Whether run-batched macro-stepping is enabled.
    #[must_use]
    pub fn batch_enabled(&self) -> bool {
        self.core.batch_enabled()
    }

    /// Counters of faults actually applied so far.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.core.fault_stats()
    }

    /// Injects a spurious message into a channel, as forbidden channel
    /// noise would (experiment E11). Counted in [`Simulation::fault_stats`]
    /// but *not* in `total_sent` — no node sent it.
    pub fn inject(&mut self, channel: ChannelId, msg: M) {
        self.core.inject(channel.index(), msg);
    }

    /// Injects a run of `count` identical spurious messages into a channel
    /// — the bulk form of [`Simulation::inject`], O(1) on the `Counter`
    /// backend. Equivalent to calling `inject` `count` times.
    pub fn inject_run(&mut self, channel: ChannelId, msg: M, count: u64) {
        self.core.inject_run(channel.index(), msg, count);
    }

    /// Enables event tracing (unbounded if `cap` is `None`).
    pub fn enable_trace(&mut self, cap: Option<usize>) {
        self.core.enable_trace(cap);
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.core.trace()
    }

    /// Enables the O(1) run-summary metrics collector ([`RunMetrics`]).
    pub fn enable_metrics(&mut self) {
        self.core.enable_metrics();
    }

    /// The collected run metrics, if enabled.
    #[must_use]
    pub fn metrics(&self) -> Option<&RunMetrics> {
        self.core.metrics()
    }

    /// Attaches an engine-level [`Observer`] that sees the raw event stream
    /// for the rest of the run.
    pub fn attach_observer(&mut self, observer: Box<dyn Observer>) {
        self.core.attach_observer(observer);
    }

    /// Runs every node's `on_start` (in node order). Idempotent.
    pub fn start(&mut self) {
        let mut handler = Self::handler(&mut self.nodes);
        self.core.start(&mut handler);
    }

    /// Delivers one message chosen by the scheduler.
    ///
    /// Starts the simulation if [`Simulation::start`] has not run yet.
    /// Returns `None` when the network is quiescent (no messages in transit).
    ///
    /// # Panics
    ///
    /// Panics if the scheduler returns an out-of-range index; use
    /// [`Simulation::try_step`] to get a typed [`EngineError`] instead.
    pub fn step(&mut self) -> Option<StepInfo> {
        let mut handler = Self::handler(&mut self.nodes);
        self.core.step(&mut handler).map(StepInfo::from_engine)
    }

    /// Like [`Simulation::step`], but reports a misbehaving scheduler as a
    /// typed [`EngineError`] — with the simulation state untouched —
    /// instead of panicking.
    pub fn try_step(&mut self) -> Result<Option<StepInfo>, EngineError> {
        let mut handler = Self::handler(&mut self.nodes);
        self.core
            .try_step(&mut handler)
            .map(|step| step.map(StepInfo::from_engine))
    }

    /// Delivers up to `max_pulses` pulses of one scheduler-picked channel in
    /// a single transition, returning the first delivery's [`StepInfo`] and
    /// the number of pulses fused (1 at every boundary that could
    /// distinguish the interleaving). Batches regardless of
    /// [`Simulation::batch_enabled`] — the explicit call is the opt-in.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler returns an out-of-range index; use
    /// [`Simulation::try_step_batch`] for the typed error.
    pub fn step_batch(&mut self, max_pulses: u64) -> Option<(StepInfo, u64)> {
        let mut handler = Self::handler(&mut self.nodes);
        self.core
            .step_batch(&mut handler, max_pulses)
            .map(|batch| (StepInfo::from_engine(batch.step), batch.count))
    }

    /// Like [`Simulation::step_batch`], but reports a misbehaving scheduler
    /// as a typed [`EngineError`] with the simulation state untouched.
    pub fn try_step_batch(
        &mut self,
        max_pulses: u64,
    ) -> Result<Option<(StepInfo, u64)>, EngineError> {
        let mut handler = Self::handler(&mut self.nodes);
        self.core
            .try_step_batch(&mut handler, max_pulses)
            .map(|batch| batch.map(|b| (StepInfo::from_engine(b.step), b.count)))
    }

    /// Runs until quiescence or budget exhaustion.
    ///
    /// Honours [`Simulation::set_batch`]: with batching on, the engine
    /// fuses pulse runs into single transitions where provably
    /// indistinguishable (budget still counts pulses). Attach per-step
    /// hooks with [`Simulation::run_with`]/[`Simulation::run_observed`],
    /// which always step per-pulse so observers see every intermediate
    /// configuration.
    pub fn run(&mut self, budget: Budget) -> RunReport {
        let mut handler = Self::handler(&mut self.nodes);
        self.core.run(&mut handler, budget)
    }

    /// Runs until quiescence or budget exhaustion, invoking `hook` after
    /// every delivery with the post-event simulation state.
    ///
    /// This is the closure-flavoured convenience over
    /// [`Simulation::run_observed`]:
    ///
    /// ```rust
    /// # use co_net::{Budget, Context, Port, Protocol, Pulse, RingSpec, SchedulerKind, Simulation};
    /// # #[derive(Debug)]
    /// # struct Quiet;
    /// # impl Protocol<Pulse> for Quiet {
    /// #     type Output = ();
    /// #     fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) { ctx.send(Port::One, Pulse); }
    /// #     fn on_message(&mut self, _p: Port, _m: Pulse, _c: &mut Context<'_, Pulse>) {}
    /// #     fn output(&self) -> Option<()> { None }
    /// # }
    /// # let spec = RingSpec::oriented(vec![1, 2]);
    /// # let nodes = vec![Quiet, Quiet];
    /// # let mut sim: Simulation<Pulse, Quiet> =
    /// #     Simulation::new(spec.wiring(), nodes, SchedulerKind::Fifo.build(0));
    /// let mut max_in_flight = 0;
    /// sim.run_with(Budget::default(), |sim, _step| {
    ///     max_in_flight = max_in_flight.max(sim.in_flight());
    /// });
    /// assert!(max_in_flight <= 2);
    /// ```
    pub fn run_with<F>(&mut self, budget: Budget, hook: F) -> RunReport
    where
        F: FnMut(&Simulation<M, P>, &StepInfo),
    {
        self.run_observed(budget, &mut HookObserver(hook))
    }

    /// Runs until quiescence or budget exhaustion under a [`SimObserver`].
    ///
    /// The observer is how `co-core`'s invariant monitors (executable
    /// Lemmas 6–12) watch every intermediate configuration; compose several
    /// with tuples: `&mut (monitor, metrics_probe)`.
    pub fn run_observed<O>(&mut self, budget: Budget, observer: &mut O) -> RunReport
    where
        O: SimObserver<M, P> + ?Sized,
    {
        self.start();
        let mut executed: u64 = 0;
        while executed < budget.max_steps {
            // `step` borrows self mutably; copy the info out for the observer.
            let Some(info) = self.step() else { break };
            executed += 1;
            observer.after_step(self, &info);
        }
        self.core.report()
    }

    /// Starts recording the sequence of channel picks as a [`Schedule`].
    pub fn enable_schedule_recording(&mut self) {
        self.core.enable_schedule_recording();
    }

    /// The schedule recorded so far, if recording was enabled.
    #[must_use]
    pub fn recorded_schedule(&self) -> Option<Schedule> {
        self.core.recorded_schedule()
    }

    /// Runs to quiescence or budget exhaustion while recording the schedule.
    ///
    /// The returned [`Schedule`] fed to [`Simulation::replay`] on a freshly
    /// built simulation of the same configuration reproduces this run — same
    /// deliveries in the same order, byte-identical [`RunReport`] and
    /// [`SimStats`].
    pub fn run_recorded(&mut self, budget: Budget) -> (RunReport, Schedule) {
        self.enable_schedule_recording();
        let report = self.run(budget);
        let schedule = self.recorded_schedule().expect("recording just enabled");
        (report, schedule)
    }

    /// Replays a recorded [`Schedule`] (deterministic record/replay).
    ///
    /// Replaces the installed scheduler with a
    /// [`ReplayScheduler`] over the
    /// schedule's picks, then runs. On a fresh simulation of the recorded
    /// configuration this reproduces the original execution exactly; the
    /// FIFO fallback (for picks that are not ready, e.g. after the protocol
    /// changed) keeps every schedule — including shrunken subsequences —
    /// a valid asynchronous execution.
    /// Honours [`Simulation::set_batch`]: a batched replay fuses exactly
    /// the scripted pick runs and reproduces the same execution
    /// byte-for-byte.
    pub fn replay(&mut self, schedule: &Schedule, budget: Budget) -> RunReport {
        self.core
            .set_scheduler(Box::new(ReplayScheduler::new(schedule.picks().to_vec())));
        self.run(budget)
    }

    /// [`Simulation::replay`] under a [`SimObserver`] — e.g. an invariant
    /// monitor re-checking a shrunken counterexample schedule.
    pub fn replay_observed<O>(
        &mut self,
        schedule: &Schedule,
        budget: Budget,
        observer: &mut O,
    ) -> RunReport
    where
        O: SimObserver<M, P> + ?Sized,
    {
        self.core
            .set_scheduler(Box::new(ReplayScheduler::new(schedule.picks().to_vec())));
        self.run_observed(budget, observer)
    }

    /// Channels with at least one queued message, sorted by index.
    #[must_use]
    pub fn ready_channels(&self) -> Vec<ChannelId> {
        self.core
            .ready_channels()
            .into_iter()
            .map(ChannelId::from_index)
            .collect()
    }

    /// Delivers the head message of a *specific* non-empty channel,
    /// bypassing the scheduler — the branching primitive of exhaustive
    /// exploration. Starts the simulation if needed; returns `None` if the
    /// channel is empty.
    pub fn step_channel(&mut self, channel: ChannelId) -> Option<StepInfo> {
        let mut handler = Self::handler(&mut self.nodes);
        self.core
            .step_channel(&mut handler, channel.index())
            .map(StepInfo::from_engine)
    }

    /// Delivers up to `max_pulses` pulses of a *specific* channel's head
    /// run in one transition, bypassing the scheduler — the batched
    /// branching primitive of macro-step exploration. The resulting
    /// configuration and fingerprint are byte-identical to delivering the
    /// same pulses through that many [`Simulation::step_channel`] calls.
    pub fn step_channel_batch(
        &mut self,
        channel: ChannelId,
        max_pulses: u64,
    ) -> Option<(StepInfo, u64)> {
        let mut handler = Self::handler(&mut self.nodes);
        self.core
            .step_channel_batch(&mut handler, channel.index(), max_pulses)
            .map(|batch| (StepInfo::from_engine(batch.step), batch.count))
    }

    /// Number of messages queued on `channel`.
    #[must_use]
    pub fn queue_len(&self, channel: ChannelId) -> usize {
        self.core.queue_len(channel.index())
    }

    /// Number of messages currently in transit.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.core.in_flight()
    }

    /// Number of in-transit messages on channels tagged `direction`.
    #[must_use]
    pub fn in_flight_direction(&self, direction: Direction) -> u64 {
        self.core.in_flight_direction(direction)
    }

    /// Whether no messages are in transit.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.core.is_quiescent()
    }

    /// Whether the given node has terminated.
    #[must_use]
    pub fn is_terminated(&self, node: NodeIndex) -> bool {
        self.core.is_terminated(node)
    }

    /// The protocol instance of a node (for state inspection by monitors).
    #[must_use]
    pub fn node(&self, node: NodeIndex) -> &P {
        &self.nodes[node]
    }

    /// All protocol instances, in node order.
    #[must_use]
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Every node's current output.
    #[must_use]
    pub fn outputs(&self) -> Vec<Option<P::Output>> {
        self.nodes.iter().map(Protocol::output).collect()
    }

    /// Aggregate counters.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        self.core.stats()
    }

    /// The next global send sequence number — the counter
    /// [`FaultPlan`] faults trigger on.
    #[must_use]
    pub fn send_seq(&self) -> u64 {
        self.core.send_seq()
    }

    /// The network wiring.
    #[must_use]
    pub fn wiring(&self) -> &Wiring {
        self.core.topology()
    }

    /// Consumes the simulation, returning the protocol instances.
    #[must_use]
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }
}

impl<M: Message, P: Protocol<M> + Snapshot> Simulation<M, P> {
    /// Captures the full simulation state (engine + every node).
    #[must_use]
    pub fn snapshot(&self) -> SimSnapshot<M, P> {
        SimSnapshot {
            core: self.core.snapshot(),
            nodes: self.nodes.iter().map(Snapshot::extract).collect(),
        }
    }

    /// Restores a state captured by [`Simulation::snapshot`].
    ///
    /// The snapshot must come from a simulation of the same configuration
    /// (same wiring, same node count, same scheduler type).
    pub fn restore(&mut self, snapshot: &SimSnapshot<M, P>) {
        assert_eq!(
            snapshot.nodes.len(),
            self.nodes.len(),
            "snapshot is for a different ring size"
        );
        self.core.restore(&snapshot.core);
        for (node, state) in self.nodes.iter_mut().zip(&snapshot.nodes) {
            node.restore(state);
        }
    }

    /// A stable 64-bit hash of the current *configuration*: per-channel
    /// queue lengths, termination flags, and every node's fingerprint.
    ///
    /// Deliberately excluded: send counters and aggregate statistics, so
    /// that two executions reaching the same configuration by different
    /// delivery orders collide — that collision is exactly what
    /// fingerprint-deduplicated exploration prunes on. Message *contents*
    /// are not hashed either (only queue lengths), which is sound for
    /// content-oblivious protocols where every message is a
    /// [`Pulse`](crate::Pulse).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_usize(self.nodes.len());
        fp.write_bool(self.core.is_started());
        for ch in 0..self.core.topology().channel_count() {
            fp.write_usize(self.core.queue_len(ch));
        }
        for v in 0..self.nodes.len() {
            fp.write_bool(self.core.is_terminated(v));
        }
        for node in &self.nodes {
            fp.write_u64(node.fingerprint());
        }
        fp.finish()
    }
}

impl<M: Message, P: Protocol<M> + fmt::Debug> fmt::Debug for Simulation<M, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.wiring().len())
            .field("in_flight", &self.in_flight())
            .field("stats", &self.stats())
            .field("nodes", &self.nodes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Pulse;
    use crate::sched::{FifoScheduler, SchedulerKind};
    use crate::topology::RingSpec;
    use crate::trace::TraceEvent;

    /// Sends `budget` pulses clockwise, one per received pulse.
    #[derive(Debug)]
    struct Ticker {
        budget: u64,
        seen: u64,
        done: bool,
    }

    impl Ticker {
        fn new(budget: u64) -> Ticker {
            Ticker {
                budget,
                seen: 0,
                done: false,
            }
        }
    }

    impl Protocol<Pulse> for Ticker {
        type Output = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
            if self.budget > 0 {
                ctx.send(Port::One, Pulse);
            }
        }
        fn on_message(&mut self, _port: Port, _msg: Pulse, ctx: &mut Context<'_, Pulse>) {
            self.seen += 1;
            if self.seen < self.budget {
                ctx.send(Port::One, Pulse);
            } else {
                self.done = true;
            }
        }
        fn is_terminated(&self) -> bool {
            self.done
        }
        fn output(&self) -> Option<u64> {
            Some(self.seen)
        }
    }

    fn ring_sim(n: usize, budget: u64) -> Simulation<Pulse, Ticker> {
        let spec = RingSpec::oriented((1..=n as u64).collect());
        let nodes = (0..n).map(|_| Ticker::new(budget)).collect();
        Simulation::new(spec.wiring(), nodes, Box::new(FifoScheduler::new()))
    }

    #[test]
    fn tickers_reach_quiescent_termination() {
        let mut sim = ring_sim(4, 5);
        let report = sim.run(Budget::default());
        assert_eq!(report.outcome, Outcome::QuiescentTerminated);
        // 4 initial + each node relays 4 times (the 5th receipt terminates).
        assert_eq!(report.total_sent, 4 + 4 * 4);
        assert!(sim.is_quiescent());
        for i in 0..4 {
            assert!(sim.is_terminated(i));
            assert_eq!(sim.node(i).output(), Some(5));
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // Infinite relay: each pulse regenerates forever.
        let mut sim = ring_sim(3, u64::MAX);
        let report = sim.run(Budget::steps(100));
        assert_eq!(report.outcome, Outcome::BudgetExhausted);
        assert_eq!(report.steps, 100);
        assert!(report.in_flight > 0);
    }

    #[test]
    fn self_loop_delivers_to_self() {
        let mut sim = ring_sim(1, 3);
        let report = sim.run(Budget::default());
        assert_eq!(report.outcome, Outcome::QuiescentTerminated);
        assert_eq!(sim.node(0).output(), Some(3));
        // 1 initial + 2 relays.
        assert_eq!(report.total_sent, 3);
    }

    #[test]
    fn stats_account_every_message() {
        let mut sim = ring_sim(4, 5);
        sim.enable_trace(None);
        let report = sim.run(Budget::default());
        let stats = sim.stats();
        assert_eq!(stats.total_sent, report.total_sent);
        assert_eq!(
            stats.total_delivered + stats.delivered_to_terminated,
            report.steps
        );
        assert_eq!(
            stats.sent_by_direction[Direction::Cw.index()],
            report.total_sent
        );
        assert_eq!(stats.sent_by_direction[Direction::Ccw.index()], 0);
        let per_node: u64 = (0..4).map(|i| stats.sent_by_node(i)).sum();
        assert_eq!(per_node, report.total_sent);
        // Trace recorded one Send per sent message and a start per node.
        let trace = sim.trace().expect("trace enabled");
        let sends = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Send { .. }))
            .count() as u64;
        assert_eq!(sends, report.total_sent);
    }

    #[test]
    fn metrics_observer_matches_stats() {
        let mut sim = ring_sim(4, 5);
        sim.enable_metrics();
        let report = sim.run(Budget::default());
        let metrics = *sim.metrics().expect("metrics enabled");
        assert_eq!(metrics.sends, report.total_sent);
        assert_eq!(metrics.pulses_delivered, sim.stats().total_delivered);
        assert_eq!(metrics.ignored, sim.stats().delivered_to_terminated);
        assert_eq!(metrics.terminations, 4);
        assert_eq!(metrics.faults, 0);
        assert!(metrics.max_in_flight >= 1);
    }

    #[test]
    fn run_with_hook_sees_every_step() {
        let mut sim = ring_sim(3, 4);
        let mut seen = 0u64;
        let report = sim.run_with(Budget::default(), |_, _| seen += 1);
        assert_eq!(seen, report.steps);
    }

    #[test]
    fn sim_observers_compose() {
        struct Counter(u64);
        impl SimObserver<Pulse, Ticker> for Counter {
            fn after_step(&mut self, _sim: &Simulation<Pulse, Ticker>, _step: &StepInfo) {
                self.0 += 1;
            }
        }
        let mut sim = ring_sim(3, 4);
        let mut pair = (Counter(0), Some(Counter(0)));
        let report = sim.run_observed(Budget::default(), &mut pair);
        assert_eq!(pair.0 .0, report.steps);
        assert_eq!(pair.1.expect("present").0, report.steps);
    }

    #[test]
    fn all_schedulers_drive_to_completion() {
        for kind in SchedulerKind::ALL {
            let spec = RingSpec::oriented(vec![1, 2, 3, 4, 5]);
            let nodes = (0..5).map(|_| Ticker::new(7)).collect();
            let mut sim: Simulation<Pulse, Ticker> =
                Simulation::new(spec.wiring(), nodes, kind.build(99));
            let report = sim.run(Budget::default());
            assert_eq!(
                report.outcome,
                Outcome::QuiescentTerminated,
                "scheduler {kind} failed"
            );
            assert_eq!(report.total_sent, 5 + 5 * 6, "scheduler {kind} count");
        }
    }

    impl Snapshot for Ticker {
        type State = (u64, u64, bool);
        fn extract(&self) -> Self::State {
            (self.budget, self.seen, self.done)
        }
        fn restore(&mut self, state: &Self::State) {
            (self.budget, self.seen, self.done) = *state;
        }
        fn fingerprint(&self) -> u64 {
            let mut fp = Fingerprint::new();
            fp.write_u64(self.budget);
            fp.write_u64(self.seen);
            fp.write_bool(self.done);
            fp.finish()
        }
    }

    #[test]
    fn record_then_replay_reproduces_report_and_stats() {
        for kind in SchedulerKind::ALL {
            let spec = RingSpec::oriented(vec![1, 2, 3, 4]);
            let nodes = (0..4).map(|_| Ticker::new(6)).collect();
            let mut original: Simulation<Pulse, Ticker> =
                Simulation::new(spec.wiring(), nodes, kind.build(17));
            let (report, schedule) = original.run_recorded(Budget::default());
            assert_eq!(report.steps as usize, schedule.len(), "{kind}");

            let nodes = (0..4).map(|_| Ticker::new(6)).collect();
            let mut replayed: Simulation<Pulse, Ticker> =
                Simulation::new(spec.wiring(), nodes, kind.build(999));
            let replay_report = replayed.replay(&schedule, Budget::default());
            assert_eq!(report, replay_report, "{kind}");
            assert_eq!(original.stats(), replayed.stats(), "{kind}");
            assert_eq!(original.outputs(), replayed.outputs(), "{kind}");
        }
    }

    #[test]
    fn snapshot_restore_rewinds_a_run() {
        let mut sim = ring_sim(3, 5);
        sim.start();
        for _ in 0..4 {
            sim.step();
        }
        let checkpoint = sim.snapshot();
        let fp_at_checkpoint = sim.fingerprint();
        let final_report = sim.run(Budget::default());
        assert_ne!(sim.fingerprint(), fp_at_checkpoint);

        sim.restore(&checkpoint);
        assert_eq!(sim.fingerprint(), fp_at_checkpoint);
        let rerun_report = sim.run(Budget::default());
        assert_eq!(final_report, rerun_report);
    }

    #[test]
    fn step_channel_delivers_from_the_named_channel_only() {
        let mut sim = ring_sim(3, 2);
        sim.start();
        let ready = sim.ready_channels();
        assert!(!ready.is_empty());
        let target = ready[0];
        let info = sim.step_channel(target).expect("channel is ready");
        assert_eq!(info.channel, target);
        // An empty channel yields no step: CW-only Tickers never fill the
        // CCW channel out of node 0's port Zero.
        let empty = ChannelId::new(0, Port::Zero);
        assert!(!sim.ready_channels().contains(&empty));
        assert!(sim.step_channel(empty).is_none());
    }

    #[test]
    fn fingerprint_ignores_path_but_sees_configuration() {
        // Two different delivery orders reaching quiescent termination end
        // in the same configuration → same fingerprint.
        let mut a = ring_sim(3, 2);
        a.run(Budget::default());
        let spec = RingSpec::oriented(vec![1, 2, 3]);
        let nodes = (0..3).map(|_| Ticker::new(2)).collect();
        let mut b: Simulation<Pulse, Ticker> =
            Simulation::new(spec.wiring(), nodes, SchedulerKind::Lifo.build(0));
        b.run(Budget::default());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), ring_sim(3, 2).fingerprint());
    }

    #[test]
    fn counter_backend_reproduces_vec_backend_run() {
        let spec = RingSpec::oriented(vec![1, 2, 3, 4]);
        let nodes: Vec<Ticker> = (0..4).map(|_| Ticker::new(6)).collect();
        let mut vec_sim: Simulation<Pulse, Ticker> = Simulation::with_backend(
            spec.wiring(),
            nodes,
            Box::new(FifoScheduler::new()),
            QueueBackend::Vec,
        );
        assert_eq!(vec_sim.queue_backend(), QueueBackend::Vec);
        let nodes: Vec<Ticker> = (0..4).map(|_| Ticker::new(6)).collect();
        let mut ctr_sim: Simulation<Pulse, Ticker> = Simulation::with_backend(
            spec.wiring(),
            nodes,
            Box::new(FifoScheduler::new()),
            QueueBackend::Counter,
        );
        assert_eq!(ctr_sim.queue_backend(), QueueBackend::Counter);
        let vec_report = vec_sim.run(Budget::default());
        let ctr_report = ctr_sim.run(Budget::default());
        assert_eq!(vec_report, ctr_report);
        assert_eq!(vec_sim.stats(), ctr_sim.stats());
        assert_eq!(vec_sim.fingerprint(), ctr_sim.fingerprint());
        // Both backends measured real bytes; the accounting is nonzero and
        // backend-specific.
        assert!(vec_sim.peak_queue_bytes() > 0);
        assert!(ctr_sim.peak_queue_bytes() > 0);
    }

    /// A deliberately broken adversary: always answers an index far past
    /// the ready list.
    #[derive(Clone, Debug)]
    struct OutOfRangeScheduler;
    impl Scheduler for OutOfRangeScheduler {
        fn pick(&mut self, ready: &[ChannelView]) -> usize {
            ready.len() + 41
        }
    }
    use crate::sched::ChannelView;

    #[test]
    fn try_step_reports_buggy_scheduler_without_mutating_state() {
        let spec = RingSpec::oriented(vec![1, 2, 3]);
        let nodes = (0..3).map(|_| Ticker::new(2)).collect();
        let mut sim: Simulation<Pulse, Ticker> =
            Simulation::new(spec.wiring(), nodes, Box::new(OutOfRangeScheduler));
        sim.start();
        let before_steps = sim.stats().steps;
        let before_in_flight = sim.in_flight();
        let err = sim.try_step().expect_err("scheduler is out of range");
        assert_eq!(
            err,
            EngineError::SchedulerOutOfRange {
                pick: 3 + 41,
                ready_len: 3
            }
        );
        // The error is raised before any delivery: nothing moved.
        assert_eq!(sim.stats().steps, before_steps);
        assert_eq!(sim.in_flight(), before_in_flight);
        // A fixed scheduler resumes the wedged-free engine normally.
        sim.core.set_scheduler(Box::new(FifoScheduler::new()));
        let report = sim.run(Budget::default());
        assert_eq!(report.outcome, Outcome::QuiescentTerminated);
    }

    /// A broken *indexed* adversary: the scan path is honest FIFO, but
    /// `indexed_pick` names a channel that is never ready.
    #[derive(Clone, Debug)]
    struct IdleIndexScheduler;
    impl Scheduler for IdleIndexScheduler {
        fn pick(&mut self, ready: &[ChannelView]) -> usize {
            ready
                .iter()
                .enumerate()
                .min_by_key(|(_, v)| v.head_seq)
                .map(|(at, _)| at)
                .expect("pick called with ready channels")
        }
        fn indexed_pick(&mut self) -> Option<ChannelId> {
            Some(ChannelId::from_index(999))
        }
    }

    #[test]
    fn try_step_reports_idle_indexed_pick_and_scan_fallback_recovers() {
        let spec = RingSpec::oriented(vec![1, 2, 3]);
        let nodes = (0..3).map(|_| Ticker::new(2)).collect();
        let mut sim: Simulation<Pulse, Ticker> =
            Simulation::new(spec.wiring(), nodes, Box::new(IdleIndexScheduler));
        assert!(sim.indexed_picks(), "indexed picks are on by default");
        sim.start();
        let before_steps = sim.stats().steps;
        let err = sim
            .try_step()
            .expect_err("indexed pick names an idle channel");
        assert_eq!(err, EngineError::SchedulerIdleChannel { channel: 999 });
        let text = err.to_string();
        assert!(text.contains("999") && text.contains("not ready"), "{text}");
        // The error is raised before any delivery: nothing moved.
        assert_eq!(sim.stats().steps, before_steps);
        // Disabling the indexed path routes around the broken index; the
        // honest scan `pick` finishes the election.
        sim.set_indexed_picks(false);
        assert!(!sim.indexed_picks());
        let report = sim.run(Budget::default());
        assert_eq!(report.outcome, Outcome::QuiescentTerminated);
    }

    #[test]
    #[should_panic(expected = "out-of-range index")]
    fn step_panics_on_buggy_scheduler() {
        let spec = RingSpec::oriented(vec![1, 2]);
        let nodes = (0..2).map(|_| Ticker::new(2)).collect();
        let mut sim: Simulation<Pulse, Ticker> =
            Simulation::new(spec.wiring(), nodes, Box::new(OutOfRangeScheduler));
        sim.step();
    }

    #[test]
    fn messages_to_terminated_nodes_are_ignored_and_counted() {
        /// Node 0 sends two pulses at start; every node terminates after one
        /// receipt, so the second pulse reaches a terminated node.
        #[derive(Debug)]
        struct Flooder {
            id: usize,
            got: bool,
        }
        impl Protocol<Pulse> for Flooder {
            type Output = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
                if self.id == 0 {
                    ctx.send(Port::One, Pulse);
                    ctx.send(Port::One, Pulse);
                }
            }
            fn on_message(&mut self, _p: Port, _m: Pulse, _ctx: &mut Context<'_, Pulse>) {
                self.got = true;
            }
            fn is_terminated(&self) -> bool {
                self.got
            }
            fn output(&self) -> Option<()> {
                self.got.then_some(())
            }
        }
        let spec = RingSpec::oriented(vec![1, 2]);
        let nodes = vec![Flooder { id: 0, got: false }, Flooder { id: 1, got: false }];
        let mut sim: Simulation<Pulse, Flooder> =
            Simulation::new(spec.wiring(), nodes, Box::new(FifoScheduler::new()));
        let report = sim.run(Budget::default());
        // Node 1 terminates after the first pulse; the second is ignored.
        // Node 0 never receives anything, so it never terminates: quiescent
        // only after both deliveries.
        assert_eq!(sim.stats().delivered_to_terminated, 1);
        assert_eq!(report.outcome, Outcome::Quiescent);
    }
}
