//! Discrete-event simulation of an asynchronous, fully defective network.
//!
//! The simulator realises the paper's model exactly:
//!
//! * nodes are **event-driven**: they act once at start-up and thereafter
//!   only when a message is delivered to them ([`Protocol`]);
//! * channels are **FIFO per channel** with adversarial finite delays — at
//!   every step the [`Scheduler`](crate::Scheduler) picks which non-empty
//!   channel delivers its head message;
//! * message **content is irrelevant**: for content-oblivious algorithms the
//!   message type is [`Pulse`](crate::Pulse), which has no content;
//! * a **terminated** node ignores all further messages and never sends
//!   again (the simulator enforces this; such deliveries void quiescent
//!   termination and are reported in the [`RunReport`]).
//!
//! The run loop is exposed one step at a time ([`Simulation::step`]) so that
//! invariant monitors (executable Lemmas 6–12 in `co-core`) can inspect the
//! global state between events.

use crate::faults::{FaultPlan, FaultStats};
use crate::message::Message;
use crate::port::{Direction, Port};
use crate::sched::{ChannelView, Scheduler};
use crate::topology::{ChannelId, NodeIndex, Wiring};
use crate::trace::{Trace, TraceEvent};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// An event-driven node program.
///
/// Implementations correspond to the per-node pseudocode of the paper's
/// algorithms. A node may send any number of messages during `on_start` and
/// each `on_message`; it can never block, read clocks, or observe anything
/// but its own state and the in-port of the delivered message.
pub trait Protocol<M: Message> {
    /// The node's decision (e.g. `Leader` / `NonLeader`), if any yet.
    type Output: Clone + fmt::Debug;

    /// Called once before any delivery; the paper's "act once right in the
    /// beginning of the computation".
    fn on_start(&mut self, ctx: &mut Context<'_, M>);

    /// Called when a message is delivered to `port`.
    fn on_message(&mut self, port: Port, msg: M, ctx: &mut Context<'_, M>);

    /// Whether the node has entered a terminating state.
    ///
    /// Once `true`, the simulator never calls [`Protocol::on_message`] again:
    /// the node ignores all incoming messages and sends no new ones, matching
    /// the paper's definition of (process) termination. Defaults to `false`
    /// for stabilizing algorithms, which never terminate.
    fn is_terminated(&self) -> bool {
        false
    }

    /// The node's current output, if decided.
    fn output(&self) -> Option<Self::Output>;
}

/// Send capability handed to a [`Protocol`] during an event.
///
/// Sends are buffered and enqueued by the simulator when the event handler
/// returns, in call order (preserving per-channel FIFO).
#[derive(Debug)]
pub struct Context<'a, M: Message> {
    node: NodeIndex,
    outbox: &'a mut Vec<(Port, M)>,
}

impl<'a, M: Message> Context<'a, M> {
    pub(crate) fn new_internal(node: NodeIndex, outbox: &'a mut Vec<(Port, M)>) -> Context<'a, M> {
        Context { node, outbox }
    }

    /// Creates a context that buffers sends into `outbox` without any
    /// attached network.
    ///
    /// This is for harnesses that interpose on a protocol's sends — e.g.
    /// the universal ring simulator, which feeds a protocol's events
    /// manually and re-encodes its outgoing messages as pulse trains.
    /// Within a [`Simulation`] the context is provided by the engine;
    /// ordinary protocol code never needs this.
    #[must_use]
    pub fn buffered(node: NodeIndex, outbox: &'a mut Vec<(Port, M)>) -> Context<'a, M> {
        Context { node, outbox }
    }

    /// Sends `msg` out of `port`.
    pub fn send(&mut self, port: Port, msg: M) {
        self.outbox.push((port, msg));
    }

    /// The index of the node executing the event (positions are opaque to
    /// paper algorithms; exposed for instrumentation and baselines).
    #[must_use]
    pub fn node(&self) -> NodeIndex {
        self.node
    }
}

/// Step/message budget bounding a run.
///
/// The paper's algorithms all reach quiescence in finite time; the budget
/// exists to turn a would-be hang (a bug) into a reported
/// [`Outcome::BudgetExhausted`] instead of an endless loop.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Budget {
    /// Maximum number of deliveries before aborting.
    pub max_steps: u64,
}

impl Budget {
    /// A budget of `max_steps` deliveries.
    #[must_use]
    pub fn steps(max_steps: u64) -> Budget {
        Budget { max_steps }
    }
}

impl Default for Budget {
    /// 50 million deliveries — far above `n(2·ID_max + 1)` for every
    /// configuration exercised in this repository.
    fn default() -> Budget {
        Budget {
            max_steps: 50_000_000,
        }
    }
}

/// How a run ended.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// Every node terminated, and no message was ever delivered to (or left
    /// queued toward) a terminated node — the paper's *quiescent
    /// termination*.
    QuiescentTerminated,
    /// Every node terminated but some messages were still in transit when
    /// nodes terminated (they were delivered and ignored).
    TerminatedNonQuiescent,
    /// No messages remain in transit but at least one node has not
    /// terminated — *quiescence*, the guarantee of stabilizing algorithms.
    Quiescent,
    /// The step budget ran out with messages still in transit.
    BudgetExhausted,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Outcome::QuiescentTerminated => "quiescent termination",
            Outcome::TerminatedNonQuiescent => "termination (non-quiescent)",
            Outcome::Quiescent => "quiescence without termination",
            Outcome::BudgetExhausted => "budget exhausted",
        };
        f.write_str(s)
    }
}

/// Aggregate counters of a simulation.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total messages sent (= the paper's message complexity when the run
    /// reaches quiescence).
    pub total_sent: u64,
    /// Total messages delivered to live nodes.
    pub total_delivered: u64,
    /// Messages delivered to terminated nodes and ignored.
    pub delivered_to_terminated: u64,
    /// Deliveries performed (steps executed).
    pub steps: u64,
    /// Sent counts by direction tag: `[CW, CCW]` (untagged channels are not
    /// counted here).
    pub sent_by_direction: [u64; 2],
    /// Per node: messages sent from each port, indexed `[node][port]`.
    pub sent_by_port: Vec<[u64; 2]>,
    /// Per node: messages received (processed) at each port.
    pub recv_by_port: Vec<[u64; 2]>,
}

impl SimStats {
    fn new(n: usize) -> SimStats {
        SimStats {
            sent_by_port: vec![[0; 2]; n],
            recv_by_port: vec![[0; 2]; n],
            ..SimStats::default()
        }
    }

    /// Total messages sent by one node.
    #[must_use]
    pub fn sent_by_node(&self, node: NodeIndex) -> u64 {
        self.sent_by_port[node].iter().sum()
    }

    /// Total messages received (processed) by one node.
    #[must_use]
    pub fn recv_by_node(&self, node: NodeIndex) -> u64 {
        self.recv_by_port[node].iter().sum()
    }
}

/// Result of [`Simulation::run`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: Outcome,
    /// Total messages sent — the paper's *message complexity* of the
    /// execution.
    pub total_sent: u64,
    /// Deliveries performed.
    pub steps: u64,
    /// Messages still in transit at the end (0 unless the budget ran out).
    pub in_flight: u64,
}

/// One delivery, as reported by [`Simulation::step`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StepInfo {
    /// The channel that delivered.
    pub channel: ChannelId,
    /// The receiving node.
    pub node: NodeIndex,
    /// The in-port the message arrived at.
    pub port: Port,
    /// Global send sequence number of the delivered message.
    pub seq: u64,
    /// Direction tag of the channel, if any.
    pub direction: Option<Direction>,
    /// Whether the receiver had already terminated (message ignored).
    pub ignored: bool,
}

#[derive(Clone, Debug)]
struct Envelope<M> {
    msg: M,
    seq: u64,
}

/// Discrete-event simulation of a network of [`Protocol`] nodes.
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct Simulation<M: Message, P: Protocol<M>> {
    wiring: Wiring,
    nodes: Vec<P>,
    terminated: Vec<bool>,
    queues: Vec<VecDeque<Envelope<M>>>,
    scheduler: Box<dyn Scheduler>,
    stats: SimStats,
    send_seq: u64,
    started: bool,
    trace: Option<Trace>,
    outbox: Vec<(Port, M)>,
    ready_buf: Vec<ChannelView>,
    /// Indices of non-empty channels, kept sorted — maintained
    /// incrementally so a step costs O(#active channels), not O(n). With a
    /// single pulse circulating (the common tail of the paper's
    /// algorithms) a step is O(1).
    nonempty: Vec<usize>,
    faults: FaultPlan,
    fault_stats: FaultStats,
}

impl<M: Message, P: Protocol<M>> Simulation<M, P> {
    /// Creates a simulation over `wiring` with one protocol instance per node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the wiring's node count.
    #[must_use]
    pub fn new(wiring: Wiring, nodes: Vec<P>, scheduler: Box<dyn Scheduler>) -> Simulation<M, P> {
        assert_eq!(
            nodes.len(),
            wiring.len(),
            "one protocol instance per node required"
        );
        let n = wiring.len();
        let channels = wiring.channel_count();
        Simulation {
            wiring,
            nodes,
            terminated: vec![false; n],
            queues: (0..channels).map(|_| VecDeque::new()).collect(),
            scheduler,
            stats: SimStats::new(n),
            send_seq: 0,
            started: false,
            trace: None,
            outbox: Vec::new(),
            ready_buf: Vec::new(),
            nonempty: Vec::new(),
            faults: FaultPlan::new(),
            fault_stats: FaultStats::default(),
        }
    }

    /// Installs a plan of model-violating channel faults (experiment E11).
    ///
    /// The paper's model forbids drops and injections; use this to observe
    /// what that assumption buys. Must be called before the run starts.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// Counters of faults actually applied so far.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Injects a spurious message into a channel, as forbidden channel
    /// noise would (experiment E11). Counted in [`Simulation::fault_stats`]
    /// but *not* in `total_sent` — no node sent it.
    pub fn inject(&mut self, channel: ChannelId, msg: M) {
        let seq = self.send_seq;
        self.send_seq += 1;
        self.fault_stats.injected += 1;
        self.enqueue(channel, Envelope { msg, seq });
    }

    fn enqueue(&mut self, ch: ChannelId, envelope: Envelope<M>) {
        if self.queues[ch.index()].is_empty() {
            if let Err(at) = self.nonempty.binary_search(&ch.index()) {
                self.nonempty.insert(at, ch.index());
            }
        }
        self.queues[ch.index()].push_back(envelope);
    }

    /// Enables event tracing (unbounded if `cap` is `None`).
    pub fn enable_trace(&mut self, cap: Option<usize>) {
        self.trace = Some(match cap {
            Some(c) => Trace::with_capacity(c),
            None => Trace::new(),
        });
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Runs every node's `on_start` (in node order). Idempotent.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for node in 0..self.nodes.len() {
            if let Some(t) = &mut self.trace {
                t.push(TraceEvent::Start { node });
            }
            let mut outbox = std::mem::take(&mut self.outbox);
            {
                let mut ctx = Context {
                    node,
                    outbox: &mut outbox,
                };
                self.nodes[node].on_start(&mut ctx);
            }
            self.flush_outbox(node, &mut outbox);
            self.outbox = outbox;
            self.note_termination(node);
        }
    }

    fn flush_outbox(&mut self, node: NodeIndex, outbox: &mut Vec<(Port, M)>) {
        for (port, msg) in outbox.drain(..) {
            let ch = ChannelId::new(node, port);
            let seq = self.send_seq;
            self.send_seq += 1;
            self.stats.total_sent += 1;
            self.stats.sent_by_port[node][port.index()] += 1;
            let direction = self.wiring.direction(ch);
            if let Some(d) = direction {
                self.stats.sent_by_direction[d.index()] += 1;
            }
            if let Some(t) = &mut self.trace {
                t.push(TraceEvent::Send {
                    node,
                    port,
                    seq,
                    direction,
                });
            }
            if self.faults.should_drop(seq) {
                self.fault_stats.dropped += 1;
                continue;
            }
            if self.faults.should_duplicate(seq) {
                self.fault_stats.duplicated += 1;
                let dup_seq = self.send_seq;
                self.send_seq += 1;
                self.enqueue(ch, Envelope { msg: msg.clone(), seq });
                self.enqueue(ch, Envelope { msg, seq: dup_seq });
            } else {
                self.enqueue(ch, Envelope { msg, seq });
            }
        }
    }

    fn note_termination(&mut self, node: NodeIndex) {
        if !self.terminated[node] && self.nodes[node].is_terminated() {
            self.terminated[node] = true;
            if let Some(t) = &mut self.trace {
                t.push(TraceEvent::Terminate { node });
            }
        }
    }

    /// Delivers one message chosen by the scheduler.
    ///
    /// Starts the simulation if [`Simulation::start`] has not run yet.
    /// Returns `None` when the network is quiescent (no messages in transit).
    pub fn step(&mut self) -> Option<StepInfo> {
        self.start();
        self.ready_buf.clear();
        for &ch in &self.nonempty {
            let head = self.queues[ch].front().expect("nonempty set is accurate");
            let id = ChannelId::from_index(ch);
            self.ready_buf.push(ChannelView {
                id,
                queue_len: self.queues[ch].len(),
                head_seq: head.seq,
                direction: self.wiring.direction(id),
            });
        }
        if self.ready_buf.is_empty() {
            return None;
        }
        let pick = self.scheduler.pick(&self.ready_buf);
        assert!(
            pick < self.ready_buf.len(),
            "scheduler returned out-of-range index {pick}"
        );
        let channel = self.ready_buf[pick].id;
        let direction = self.ready_buf[pick].direction;
        let envelope = self.queues[channel.index()]
            .pop_front()
            .expect("picked channel is non-empty");
        if self.queues[channel.index()].is_empty() {
            if let Ok(at) = self.nonempty.binary_search(&channel.index()) {
                self.nonempty.remove(at);
            }
        }
        let (node, port) = self.wiring.endpoint(channel);
        self.stats.steps += 1;

        let ignored = self.terminated[node];
        if ignored {
            self.stats.delivered_to_terminated += 1;
            if let Some(t) = &mut self.trace {
                t.push(TraceEvent::DeliverIgnored {
                    node,
                    port,
                    seq: envelope.seq,
                });
            }
        } else {
            self.stats.total_delivered += 1;
            self.stats.recv_by_port[node][port.index()] += 1;
            if let Some(t) = &mut self.trace {
                t.push(TraceEvent::Deliver {
                    node,
                    port,
                    seq: envelope.seq,
                    direction,
                });
            }
            let mut outbox = std::mem::take(&mut self.outbox);
            {
                let mut ctx = Context {
                    node,
                    outbox: &mut outbox,
                };
                self.nodes[node].on_message(port, envelope.msg, &mut ctx);
            }
            self.flush_outbox(node, &mut outbox);
            self.outbox = outbox;
            self.note_termination(node);
        }

        Some(StepInfo {
            channel,
            node,
            port,
            seq: envelope.seq,
            direction,
            ignored,
        })
    }

    /// Runs until quiescence or budget exhaustion.
    pub fn run(&mut self, budget: Budget) -> RunReport {
        self.run_with(budget, |_, _| {})
    }

    /// Runs until quiescence or budget exhaustion, invoking `hook` after
    /// every delivery with the post-event simulation state.
    ///
    /// The hook is how `co-core`'s invariant monitors (executable
    /// Lemmas 6–12) observe every intermediate configuration:
    ///
    /// ```rust
    /// # use co_net::{Budget, Context, Port, Protocol, Pulse, RingSpec, SchedulerKind, Simulation};
    /// # #[derive(Debug)]
    /// # struct Quiet;
    /// # impl Protocol<Pulse> for Quiet {
    /// #     type Output = ();
    /// #     fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) { ctx.send(Port::One, Pulse); }
    /// #     fn on_message(&mut self, _p: Port, _m: Pulse, _c: &mut Context<'_, Pulse>) {}
    /// #     fn output(&self) -> Option<()> { None }
    /// # }
    /// # let spec = RingSpec::oriented(vec![1, 2]);
    /// # let nodes = vec![Quiet, Quiet];
    /// # let mut sim: Simulation<Pulse, Quiet> =
    /// #     Simulation::new(spec.wiring(), nodes, SchedulerKind::Fifo.build(0));
    /// let mut max_in_flight = 0;
    /// sim.run_with(Budget::default(), |sim, _step| {
    ///     max_in_flight = max_in_flight.max(sim.in_flight());
    /// });
    /// assert!(max_in_flight <= 2);
    /// ```
    pub fn run_with<F>(&mut self, budget: Budget, mut hook: F) -> RunReport
    where
        F: FnMut(&Simulation<M, P>, &StepInfo),
    {
        self.start();
        let mut executed: u64 = 0;
        while executed < budget.max_steps {
            // `step` borrows self mutably; copy the info out for the hook.
            let Some(info) = self.step() else { break };
            executed += 1;
            hook(self, &info);
        }
        let in_flight = self.in_flight();
        let outcome = if in_flight > 0 {
            Outcome::BudgetExhausted
        } else if self.terminated.iter().all(|&t| t) {
            if self.stats.delivered_to_terminated == 0 {
                Outcome::QuiescentTerminated
            } else {
                Outcome::TerminatedNonQuiescent
            }
        } else {
            Outcome::Quiescent
        };
        RunReport {
            outcome,
            total_sent: self.stats.total_sent,
            steps: self.stats.steps,
            in_flight,
        }
    }

    /// Number of messages currently in transit.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.queues.iter().map(|q| q.len() as u64).sum()
    }

    /// Number of in-transit messages on channels tagged `direction`.
    #[must_use]
    pub fn in_flight_direction(&self, direction: Direction) -> u64 {
        self.queues
            .iter()
            .enumerate()
            .filter(|(ch, _)| {
                self.wiring.direction(ChannelId::from_index(*ch)) == Some(direction)
            })
            .map(|(_, q)| q.len() as u64)
            .sum()
    }

    /// Whether no messages are in transit.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.in_flight() == 0
    }

    /// Whether the given node has terminated.
    #[must_use]
    pub fn is_terminated(&self, node: NodeIndex) -> bool {
        self.terminated[node]
    }

    /// The protocol instance of a node (for state inspection by monitors).
    #[must_use]
    pub fn node(&self, node: NodeIndex) -> &P {
        &self.nodes[node]
    }

    /// All protocol instances, in node order.
    #[must_use]
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Every node's current output.
    #[must_use]
    pub fn outputs(&self) -> Vec<Option<P::Output>> {
        self.nodes.iter().map(Protocol::output).collect()
    }

    /// Aggregate counters.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The network wiring.
    #[must_use]
    pub fn wiring(&self) -> &Wiring {
        &self.wiring
    }

    /// Consumes the simulation, returning the protocol instances.
    #[must_use]
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }
}

impl<M: Message, P: Protocol<M> + fmt::Debug> fmt::Debug for Simulation<M, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.wiring.len())
            .field("in_flight", &self.in_flight())
            .field("stats", &self.stats)
            .field("nodes", &self.nodes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Pulse;
    use crate::sched::{FifoScheduler, SchedulerKind};
    use crate::topology::RingSpec;

    /// Sends `budget` pulses clockwise, one per received pulse.
    #[derive(Debug)]
    struct Ticker {
        budget: u64,
        seen: u64,
        done: bool,
    }

    impl Ticker {
        fn new(budget: u64) -> Ticker {
            Ticker {
                budget,
                seen: 0,
                done: false,
            }
        }
    }

    impl Protocol<Pulse> for Ticker {
        type Output = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
            if self.budget > 0 {
                ctx.send(Port::One, Pulse);
            }
        }
        fn on_message(&mut self, _port: Port, _msg: Pulse, ctx: &mut Context<'_, Pulse>) {
            self.seen += 1;
            if self.seen < self.budget {
                ctx.send(Port::One, Pulse);
            } else {
                self.done = true;
            }
        }
        fn is_terminated(&self) -> bool {
            self.done
        }
        fn output(&self) -> Option<u64> {
            Some(self.seen)
        }
    }

    fn ring_sim(n: usize, budget: u64) -> Simulation<Pulse, Ticker> {
        let spec = RingSpec::oriented((1..=n as u64).collect());
        let nodes = (0..n).map(|_| Ticker::new(budget)).collect();
        Simulation::new(spec.wiring(), nodes, Box::new(FifoScheduler::new()))
    }

    #[test]
    fn tickers_reach_quiescent_termination() {
        let mut sim = ring_sim(4, 5);
        let report = sim.run(Budget::default());
        assert_eq!(report.outcome, Outcome::QuiescentTerminated);
        // 4 initial + each node relays 4 times (the 5th receipt terminates).
        assert_eq!(report.total_sent, 4 + 4 * 4);
        assert!(sim.is_quiescent());
        for i in 0..4 {
            assert!(sim.is_terminated(i));
            assert_eq!(sim.node(i).output(), Some(5));
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // Infinite relay: each pulse regenerates forever.
        let mut sim = ring_sim(3, u64::MAX);
        let report = sim.run(Budget::steps(100));
        assert_eq!(report.outcome, Outcome::BudgetExhausted);
        assert_eq!(report.steps, 100);
        assert!(report.in_flight > 0);
    }

    #[test]
    fn self_loop_delivers_to_self() {
        let mut sim = ring_sim(1, 3);
        let report = sim.run(Budget::default());
        assert_eq!(report.outcome, Outcome::QuiescentTerminated);
        assert_eq!(sim.node(0).output(), Some(3));
        // 1 initial + 2 relays.
        assert_eq!(report.total_sent, 3);
    }

    #[test]
    fn stats_account_every_message() {
        let mut sim = ring_sim(4, 5);
        sim.enable_trace(None);
        let report = sim.run(Budget::default());
        let stats = sim.stats();
        assert_eq!(stats.total_sent, report.total_sent);
        assert_eq!(stats.total_delivered + stats.delivered_to_terminated, report.steps);
        assert_eq!(stats.sent_by_direction[Direction::Cw.index()], report.total_sent);
        assert_eq!(stats.sent_by_direction[Direction::Ccw.index()], 0);
        let per_node: u64 = (0..4).map(|i| stats.sent_by_node(i)).sum();
        assert_eq!(per_node, report.total_sent);
        // Trace recorded one Send per sent message and a start per node.
        let trace = sim.trace().expect("trace enabled");
        let sends = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Send { .. }))
            .count() as u64;
        assert_eq!(sends, report.total_sent);
    }

    #[test]
    fn run_with_hook_sees_every_step() {
        let mut sim = ring_sim(3, 4);
        let mut seen = 0u64;
        let report = sim.run_with(Budget::default(), |_, _| seen += 1);
        assert_eq!(seen, report.steps);
    }

    #[test]
    fn all_schedulers_drive_to_completion() {
        for kind in SchedulerKind::ALL {
            let spec = RingSpec::oriented(vec![1, 2, 3, 4, 5]);
            let nodes = (0..5).map(|_| Ticker::new(7)).collect();
            let mut sim: Simulation<Pulse, Ticker> =
                Simulation::new(spec.wiring(), nodes, kind.build(99));
            let report = sim.run(Budget::default());
            assert_eq!(
                report.outcome,
                Outcome::QuiescentTerminated,
                "scheduler {kind} failed"
            );
            assert_eq!(report.total_sent, 5 + 5 * 6, "scheduler {kind} count");
        }
    }

    #[test]
    fn messages_to_terminated_nodes_are_ignored_and_counted() {
        /// Node 0 sends two pulses at start; every node terminates after one
        /// receipt, so the second pulse reaches a terminated node.
        #[derive(Debug)]
        struct Flooder {
            id: usize,
            got: bool,
        }
        impl Protocol<Pulse> for Flooder {
            type Output = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
                if self.id == 0 {
                    ctx.send(Port::One, Pulse);
                    ctx.send(Port::One, Pulse);
                }
            }
            fn on_message(&mut self, _p: Port, _m: Pulse, _ctx: &mut Context<'_, Pulse>) {
                self.got = true;
            }
            fn is_terminated(&self) -> bool {
                self.got
            }
            fn output(&self) -> Option<()> {
                self.got.then_some(())
            }
        }
        let spec = RingSpec::oriented(vec![1, 2]);
        let nodes = vec![Flooder { id: 0, got: false }, Flooder { id: 1, got: false }];
        let mut sim: Simulation<Pulse, Flooder> =
            Simulation::new(spec.wiring(), nodes, Box::new(FifoScheduler::new()));
        let report = sim.run(Budget::default());
        // Node 1 terminates after the first pulse; the second is ignored.
        // Node 0 never receives anything, so it never terminates: quiescent
        // only after both deliveries.
        assert_eq!(sim.stats().delivered_to_terminated, 1);
        assert_eq!(report.outcome, Outcome::Quiescent);
    }
}
