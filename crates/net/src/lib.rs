//! # `co-net` — asynchronous fully-defective network substrate
//!
//! This crate implements the communication model of *Content-Oblivious Leader
//! Election on Rings* (Frei, Gelles, Ghazy, Nolin; DISC 2024):
//!
//! * an **asynchronous** message-passing network — per-channel FIFO delivery
//!   with unbounded-but-finite adversarial delays, modelled as a
//!   discrete-event [`Simulation`] whose delivery order is chosen by a
//!   pluggable adversarial [`Scheduler`];
//! * **fully defective channels** — the content of every message is erased by
//!   noise, leaving only a [`Pulse`]; content-obliviousness is enforced *by
//!   type*: a protocol over `M = Pulse` cannot read content because none
//!   exists;
//! * **ring topologies** — oriented and non-oriented rings including the
//!   degenerate cases `n = 1` (self-loop) and `n = 2` (double edge), built by
//!   [`RingSpec`];
//! * a **threaded runtime** ([`threaded`]) that executes the same protocols on
//!   real OS threads connected by channels, demonstrating that results are not
//!   simulator artifacts.
//!
//! The simulator is generic over the message type `M` so the same machinery
//! runs both content-oblivious algorithms (`M = Pulse`) and the classical
//! content-carrying baselines used for comparison (`M =` payload enums).
//!
//! ## Quick example
//!
//! ```rust
//! use co_net::{Budget, Context, Outcome, Port, Protocol, Pulse, RingSpec, Simulation};
//! use co_net::sched::FifoScheduler;
//!
//! /// A node that emits one pulse clockwise and relays the first pulse it sees.
//! #[derive(Debug)]
//! struct OneShotRelay {
//!     relayed: bool,
//! }
//!
//! impl Protocol<Pulse> for OneShotRelay {
//!     type Output = bool;
//!     fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
//!         ctx.send(Port::One, Pulse);
//!     }
//!     fn on_message(&mut self, _port: Port, _msg: Pulse, ctx: &mut Context<'_, Pulse>) {
//!         if !self.relayed {
//!             self.relayed = true;
//!             ctx.send(Port::One, Pulse);
//!         }
//!     }
//!     fn output(&self) -> Option<bool> {
//!         Some(self.relayed)
//!     }
//! }
//!
//! let spec = RingSpec::oriented(vec![1, 2, 3]);
//! let nodes = (0..spec.len()).map(|_| OneShotRelay { relayed: false }).collect();
//! let mut sim = Simulation::new(spec.wiring(), nodes, Box::new(FifoScheduler::new()));
//! let report = sim.run(Budget::default());
//! assert_eq!(report.outcome, Outcome::Quiescent);
//! assert_eq!(report.total_sent, 6); // 3 initial pulses + 3 relays
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod clock;
pub mod dedup;
pub mod engine;
pub mod explore;
pub mod faults;
pub mod fleet;
pub mod graph;
pub mod message;
pub mod multiport;
pub mod port;
pub mod prof;
pub mod runtime;
pub mod sched;
pub mod shrink;
pub mod sim;
pub mod snapshot;
pub mod threaded;
pub mod topology;
pub mod trace;

pub use clock::{LatencyModel, LatencyPlan, VirtualClock};
pub use dedup::{
    DedupBytes, DedupKind, FingerprintStore, MmapStore, ParseDedupError, ShardedIndex,
};
pub use engine::{
    CoreSnapshot, EngineBatch, EngineError, EngineEvent, EngineStep, EventCore, EventHandler,
    FaultKind, Observer, QueueBackend, QueueStore, RunMetrics, Topology,
};
pub use faults::{FaultPlan, FaultStats};
pub use fleet::{FleetConfig, FleetReport, FleetRingDetail, PulseHistogram, RingPlan, RingSizes};
pub use message::{Message, Pulse, UnitMessage};
pub use multiport::{GraphContext, GraphProtocol, GraphRunContext, GraphSim, GraphWiring};
pub use port::{Direction, Port};
pub use sched::{ChannelView, Scheduler, SchedulerKind};
pub use shrink::shrink_schedule;
pub use sim::{
    Budget, Context, Outcome, Protocol, RunContext, RunReport, SimObserver, SimSnapshot, SimStats,
    Simulation, StepInfo,
};
pub use snapshot::{Fingerprint, Schedule, Snapshot};
pub use topology::{ChannelId, NodeIndex, RingSpec, Wiring};
pub use trace::{Trace, TraceEvent};
