//! Ring topologies and channel wiring.
//!
//! A ring of `n` nodes has `n` undirected links; each link carries two
//! directed FIFO channels. [`RingSpec`] describes a ring — node IDs in
//! clockwise position order plus an optional per-node port flip — and
//! compiles it into a [`Wiring`], the channel table used by the simulator.

use crate::port::{Direction, Port};
use rand::Rng;
use std::fmt;

/// Index of a node within a network (its clockwise position for rings).
pub type NodeIndex = usize;

/// Identifier of a directed channel: the pair (source node, source port).
///
/// Channel `ChannelId::new(v, p)` carries messages sent by node `v` from its
/// port `p`; its delivery endpoint is given by [`Wiring::endpoint`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(usize);

impl ChannelId {
    /// Builds the channel id for messages leaving `node` via `port`.
    #[must_use]
    pub fn new(node: NodeIndex, port: Port) -> ChannelId {
        ChannelId(node * 2 + port.index())
    }

    /// The sending node.
    #[must_use]
    pub fn node(self) -> NodeIndex {
        self.0 / 2
    }

    /// The sending port.
    #[must_use]
    pub fn port(self) -> Port {
        Port::from_index(self.0 % 2)
    }

    /// Dense index in `0..2n`, usable as a vector index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Inverse of [`ChannelId::index`].
    #[must_use]
    pub fn from_index(index: usize) -> ChannelId {
        ChannelId(index)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch({}, {})", self.node(), self.port())
    }
}

/// Compiled channel table of a network.
///
/// For every directed channel (node, out-port) the wiring records the
/// destination (node, in-port) and an optional global [`Direction`] tag used
/// only by the harness's instrumentation (nodes never observe it).
///
/// The endpoint map of a valid wiring is an involution when read as a map on
/// (node, port) pairs: the channel leaving `(v, p)` arrives at `(u, q)` iff
/// the channel leaving `(u, q)` arrives at `(v, p)` — the two directed
/// channels of one undirected link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Wiring {
    n: usize,
    /// `endpoints[c]` = destination (node, port) of channel with index `c`.
    endpoints: Vec<(NodeIndex, Port)>,
    /// `directions[c]` = global direction carried by channel `c`, if the
    /// network is a ring.
    directions: Vec<Option<Direction>>,
}

impl Wiring {
    /// Builds a wiring from an explicit endpoint map.
    ///
    /// # Errors
    ///
    /// Returns a [`WiringError`] if the map is not a valid set of undirected
    /// links: wrong length, endpoint out of range, or not an involution.
    pub fn from_endpoints(
        n: usize,
        endpoints: Vec<(NodeIndex, Port)>,
        directions: Vec<Option<Direction>>,
    ) -> Result<Wiring, WiringError> {
        if n == 0 {
            return Err(WiringError::Empty);
        }
        if endpoints.len() != 2 * n || directions.len() != 2 * n {
            return Err(WiringError::WrongLength {
                expected: 2 * n,
                endpoints: endpoints.len(),
                directions: directions.len(),
            });
        }
        for &(v, _) in &endpoints {
            if v >= n {
                return Err(WiringError::NodeOutOfRange { node: v, n });
            }
        }
        // The map (v, p) -> endpoint(v, p) must be an involution: following a
        // link from either side lands back where we started.
        for c in 0..2 * n {
            let id = ChannelId::from_index(c);
            let (dst, dst_port) = endpoints[c];
            let back = endpoints[ChannelId::new(dst, dst_port).index()];
            if back != (id.node(), id.port()) {
                return Err(WiringError::NotInvolution { channel: id });
            }
        }
        Ok(Wiring {
            n,
            endpoints,
            directions,
        })
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the network has no nodes (never true for a valid wiring).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of directed channels (`2n` for a ring).
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Destination (node, in-port) of the given channel.
    #[must_use]
    pub fn endpoint(&self, channel: ChannelId) -> (NodeIndex, Port) {
        self.endpoints[channel.index()]
    }

    /// Global direction carried by the channel, if known.
    #[must_use]
    pub fn direction(&self, channel: ChannelId) -> Option<Direction> {
        self.directions[channel.index()]
    }

    /// Iterates over all channel ids.
    pub fn channels(&self) -> impl Iterator<Item = ChannelId> + '_ {
        (0..self.channel_count()).map(ChannelId::from_index)
    }
}

/// The ring's channel table as seen by the generic event core: every node
/// has exactly two ports and channel `node * 2 + port` leaves `(node, port)`
/// (the [`ChannelId`] layout).
impl crate::engine::Topology for Wiring {
    fn len(&self) -> usize {
        self.n
    }

    fn channel_count(&self) -> usize {
        self.endpoints.len()
    }

    fn degree(&self, _node: usize) -> usize {
        2
    }

    fn out_channel(&self, node: usize, port: usize) -> usize {
        node * 2 + port
    }

    fn endpoint(&self, channel: usize) -> (usize, usize) {
        let (node, port) = self.endpoints[channel];
        (node, port.index())
    }

    fn direction(&self, channel: usize) -> Option<Direction> {
        self.directions[channel]
    }
}

/// Error building a [`Wiring`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WiringError {
    /// The network must have at least one node.
    Empty,
    /// Endpoint or direction tables have the wrong length.
    WrongLength {
        /// Expected number of channels (`2n`).
        expected: usize,
        /// Provided endpoint count.
        endpoints: usize,
        /// Provided direction count.
        directions: usize,
    },
    /// An endpoint references a node outside `0..n`.
    NodeOutOfRange {
        /// The offending node index.
        node: NodeIndex,
        /// The network size.
        n: usize,
    },
    /// The endpoint map is not an involution.
    NotInvolution {
        /// A channel whose reverse does not lead back.
        channel: ChannelId,
    },
}

impl fmt::Display for WiringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WiringError::Empty => f.write_str("network must have at least one node"),
            WiringError::WrongLength {
                expected,
                endpoints,
                directions,
            } => write!(
                f,
                "expected {expected} channels, got {endpoints} endpoints and {directions} directions"
            ),
            WiringError::NodeOutOfRange { node, n } => {
                write!(f, "endpoint node {node} out of range for n={n}")
            }
            WiringError::NotInvolution { channel } => {
                write!(f, "endpoint map is not an involution at {channel}")
            }
        }
    }
}

impl std::error::Error for WiringError {}

/// Description of a ring network: IDs in clockwise position order plus the
/// per-node port layout.
///
/// Position `i`'s clockwise neighbour is position `(i + 1) % n`. If
/// `flips[i]` is `false`, node `i` follows the oriented convention
/// (`Port::One` leads clockwise); if `true`, its ports are swapped. A ring is
/// *oriented* exactly when every flip is `false` (or every flip is `true`,
/// which is the mirror image; we canonicalise to `false`).
///
/// ```rust
/// use co_net::{Direction, Port, RingSpec};
/// let spec = RingSpec::oriented(vec![10, 20, 30]);
/// assert!(spec.is_oriented());
/// assert_eq!(spec.id_max(), 30);
/// assert_eq!(spec.cw_port(0), Port::One);
/// let wiring = spec.wiring();
/// // Node 0's clockwise channel arrives at node 1's counterclockwise port.
/// let ch = co_net::ChannelId::new(0, Port::One);
/// assert_eq!(wiring.endpoint(ch), (1, Port::Zero));
/// assert_eq!(wiring.direction(ch), Some(Direction::Cw));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingSpec {
    ids: Vec<u64>,
    flips: Vec<bool>,
}

impl RingSpec {
    /// Builds an oriented ring with the given IDs (clockwise order).
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty or any ID is zero (the paper requires
    /// positive integer IDs).
    #[must_use]
    pub fn oriented(ids: Vec<u64>) -> RingSpec {
        let flips = vec![false; ids.len()];
        RingSpec::with_flips(ids, flips)
    }

    /// Builds a non-oriented ring with an explicit port layout.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty, any ID is zero, or `flips.len() != ids.len()`.
    #[must_use]
    pub fn with_flips(ids: Vec<u64>, flips: Vec<bool>) -> RingSpec {
        assert!(!ids.is_empty(), "a ring needs at least one node");
        assert_eq!(ids.len(), flips.len(), "one flip per node required");
        assert!(
            ids.iter().all(|&id| id > 0),
            "IDs must be positive integers"
        );
        RingSpec { ids, flips }
    }

    /// Builds a ring with uniformly random port flips.
    #[must_use]
    pub fn random_flips<R: Rng + ?Sized>(ids: Vec<u64>, rng: &mut R) -> RingSpec {
        let flips = (0..ids.len()).map(|_| rng.gen::<bool>()).collect();
        RingSpec::with_flips(ids, flips)
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the ring has no nodes (never true for a valid spec).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The node IDs in clockwise position order.
    #[must_use]
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The per-node port flips.
    #[must_use]
    pub fn flips(&self) -> &[bool] {
        &self.flips
    }

    /// ID of the node at clockwise position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn id(&self, i: NodeIndex) -> u64 {
        self.ids[i]
    }

    /// The largest ID in the ring (the paper's `ID_max`).
    #[must_use]
    pub fn id_max(&self) -> u64 {
        *self.ids.iter().max().expect("ring is non-empty")
    }

    /// Position of the first node holding the largest ID.
    #[must_use]
    pub fn max_position(&self) -> NodeIndex {
        let max = self.id_max();
        self.ids
            .iter()
            .position(|&id| id == max)
            .expect("non-empty")
    }

    /// Whether all IDs are pairwise distinct.
    #[must_use]
    pub fn ids_unique(&self) -> bool {
        let mut sorted = self.ids.clone();
        sorted.sort_unstable();
        sorted.windows(2).all(|w| w[0] != w[1])
    }

    /// Whether the ring is oriented (no node has flipped ports).
    #[must_use]
    pub fn is_oriented(&self) -> bool {
        self.flips.iter().all(|&f| !f)
    }

    /// The port of node `i` that leads to its clockwise neighbour.
    #[must_use]
    pub fn cw_port(&self, i: NodeIndex) -> Port {
        if self.flips[i] {
            Port::Zero
        } else {
            Port::One
        }
    }

    /// The port of node `i` that leads to its counterclockwise neighbour.
    #[must_use]
    pub fn ccw_port(&self, i: NodeIndex) -> Port {
        self.cw_port(i).opposite()
    }

    /// Clockwise neighbour position of node `i`.
    #[must_use]
    pub fn cw_neighbor(&self, i: NodeIndex) -> NodeIndex {
        (i + 1) % self.len()
    }

    /// Counterclockwise neighbour position of node `i`.
    #[must_use]
    pub fn ccw_neighbor(&self, i: NodeIndex) -> NodeIndex {
        (i + self.len() - 1) % self.len()
    }

    /// Compiles the spec into the simulator's channel table.
    ///
    /// Clockwise channels (leaving a node's clockwise port) are tagged
    /// [`Direction::Cw`]; the reverse channels [`Direction::Ccw`]. For
    /// `n = 1` the two ports of the single node are connected to each other
    /// (a self-loop); for `n = 2` the two nodes are joined by two parallel
    /// links, keeping every node at degree two as the paper's model requires.
    #[must_use]
    pub fn wiring(&self) -> Wiring {
        let n = self.len();
        let mut endpoints = vec![(0, Port::Zero); 2 * n];
        let mut directions = vec![None; 2 * n];
        for i in 0..n {
            let j = self.cw_neighbor(i);
            let out = ChannelId::new(i, self.cw_port(i));
            let back = ChannelId::new(j, self.ccw_port(j));
            endpoints[out.index()] = (j, self.ccw_port(j));
            directions[out.index()] = Some(Direction::Cw);
            endpoints[back.index()] = (i, self.cw_port(i));
            directions[back.index()] = Some(Direction::Ccw);
        }
        Wiring::from_endpoints(n, endpoints, directions).expect("ring wiring is always valid")
    }
}

impl fmt::Display for RingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ring[n={}](", self.len())?;
        for (i, id) in self.ids.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}{}", id, if self.flips[i] { "↺" } else { "" })?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn oriented_ring_wiring_n3() {
        let spec = RingSpec::oriented(vec![1, 2, 3]);
        let w = spec.wiring();
        assert_eq!(w.len(), 3);
        assert_eq!(w.channel_count(), 6);
        // CW channel of node 2 wraps to node 0.
        assert_eq!(w.endpoint(ChannelId::new(2, Port::One)), (0, Port::Zero));
        // CCW channel of node 0 goes back to node 2.
        assert_eq!(w.endpoint(ChannelId::new(0, Port::Zero)), (2, Port::One));
        assert_eq!(
            w.direction(ChannelId::new(0, Port::Zero)),
            Some(Direction::Ccw)
        );
    }

    #[test]
    fn self_loop_ring_n1() {
        let spec = RingSpec::oriented(vec![7]);
        let w = spec.wiring();
        assert_eq!(w.endpoint(ChannelId::new(0, Port::One)), (0, Port::Zero));
        assert_eq!(w.endpoint(ChannelId::new(0, Port::Zero)), (0, Port::One));
    }

    #[test]
    fn double_edge_ring_n2() {
        let spec = RingSpec::oriented(vec![1, 2]);
        let w = spec.wiring();
        // Two parallel links; all four channels distinct.
        assert_eq!(w.endpoint(ChannelId::new(0, Port::One)), (1, Port::Zero));
        assert_eq!(w.endpoint(ChannelId::new(1, Port::One)), (0, Port::Zero));
        assert_eq!(w.endpoint(ChannelId::new(0, Port::Zero)), (1, Port::One));
        assert_eq!(w.endpoint(ChannelId::new(1, Port::Zero)), (0, Port::One));
    }

    #[test]
    fn flipped_node_swaps_ports() {
        let spec = RingSpec::with_flips(vec![1, 2, 3], vec![false, true, false]);
        assert!(!spec.is_oriented());
        assert_eq!(spec.cw_port(1), Port::Zero);
        let w = spec.wiring();
        // Node 0's CW channel arrives at node 1's CCW-side port, which is
        // Port::One because node 1 is flipped.
        assert_eq!(w.endpoint(ChannelId::new(0, Port::One)), (1, Port::One));
        assert_eq!(w.endpoint(ChannelId::new(1, Port::Zero)), (2, Port::Zero));
    }

    #[test]
    fn wiring_is_involution_for_random_specs() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 3, 5, 8, 17] {
            let ids = (1..=n as u64).collect();
            let spec = RingSpec::random_flips(ids, &mut rng);
            let w = spec.wiring();
            for c in w.channels() {
                let (v, p) = w.endpoint(c);
                let (back_v, back_p) = w.endpoint(ChannelId::new(v, p));
                assert_eq!((back_v, back_p), (c.node(), c.port()));
            }
        }
    }

    #[test]
    fn id_helpers() {
        let spec = RingSpec::oriented(vec![5, 9, 9, 2]);
        assert_eq!(spec.id_max(), 9);
        assert_eq!(spec.max_position(), 1);
        assert!(!spec.ids_unique());
        assert_eq!(spec.cw_neighbor(3), 0);
        assert_eq!(spec.ccw_neighbor(0), 3);
    }

    #[test]
    #[should_panic(expected = "IDs must be positive")]
    fn zero_id_rejected() {
        let _ = RingSpec::oriented(vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_ring_rejected() {
        let _ = RingSpec::oriented(vec![]);
    }

    #[test]
    fn invalid_wiring_rejected() {
        // Two nodes, all channels point at node 0 port 0 — not an involution.
        let endpoints = vec![(0, Port::Zero); 4];
        let err = Wiring::from_endpoints(2, endpoints, vec![None; 4]).unwrap_err();
        assert!(matches!(err, WiringError::NotInvolution { .. }));
    }

    #[test]
    fn display_renders() {
        let spec = RingSpec::with_flips(vec![1, 2], vec![false, true]);
        assert_eq!(spec.to_string(), "ring[n=2](1, 2↺)");
        assert_eq!(ChannelId::new(1, Port::Zero).to_string(), "ch(1, Port_0)");
    }
}
