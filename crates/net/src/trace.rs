//! Execution traces for debugging and analysis.
//!
//! A [`Trace`] is an append-only log of network events. Traces are optional
//! (off by default) because the paper's algorithms exchange up to
//! `n · ID_max` pulses; when enabled, the trace can be capped to a maximum
//! length.
//!
//! `Trace` implements the engine's [`Observer`](crate::engine::Observer)
//! trait, so it records exactly the event stream the unified event core
//! emits — for rings *and* general graphs alike. Ports are the core's dense
//! `usize` indices; on a ring they coincide with
//! [`Port::index`](crate::Port::index).

use crate::engine::FaultKind;
use crate::port::Direction;
use crate::topology::NodeIndex;

/// One observable network event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node executed its initialisation step.
    Start {
        /// The node.
        node: NodeIndex,
    },
    /// A node sent a message.
    Send {
        /// Sending node.
        node: NodeIndex,
        /// Out-port used (dense index, `0..degree`).
        port: usize,
        /// Global send sequence number of the message.
        seq: u64,
        /// Direction tag of the channel, if any.
        direction: Option<Direction>,
    },
    /// A message was delivered to (and processed by) a node.
    Deliver {
        /// Receiving node.
        node: NodeIndex,
        /// In-port the message arrived at (dense index).
        port: usize,
        /// Global send sequence number of the message.
        seq: u64,
        /// Direction tag of the channel, if any.
        direction: Option<Direction>,
        /// Virtual delivery time (always 0 without a latency plan).
        at: u64,
    },
    /// A message arrived at a node that had already terminated and was
    /// ignored (this voids quiescent termination).
    DeliverIgnored {
        /// Receiving (terminated) node.
        node: NodeIndex,
        /// In-port the message arrived at (dense index).
        port: usize,
        /// Global send sequence number of the message.
        seq: u64,
    },
    /// A node entered its terminating state.
    Terminate {
        /// The node.
        node: NodeIndex,
    },
    /// A model-violating channel fault was applied (experiment E11).
    Fault {
        /// What happened to the message.
        kind: FaultKind,
        /// Sequence number of the affected message.
        seq: u64,
    },
    /// A virtual timer armed by a node came due and its handler ran.
    TimerFired {
        /// The node whose timer fired.
        node: NodeIndex,
        /// The token the node armed the timer with.
        token: u64,
        /// Virtual time at which the timer fired.
        at: u64,
    },
}

/// An append-only, optionally capped log of [`TraceEvent`]s.
///
/// ```rust
/// use co_net::{Trace, TraceEvent};
/// let mut trace = Trace::with_capacity(2);
/// trace.push(TraceEvent::Start { node: 0 });
/// trace.push(TraceEvent::Terminate { node: 0 });
/// trace.push(TraceEvent::Start { node: 1 }); // dropped: cap reached
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.dropped(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    cap: Option<usize>,
    dropped: u64,
}

impl Trace {
    /// Creates an unbounded trace.
    #[must_use]
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Creates a trace that retains at most `cap` events (later events are
    /// counted but dropped).
    #[must_use]
    pub fn with_capacity(cap: usize) -> Trace {
        Trace {
            events: Vec::new(),
            cap: Some(cap),
            dropped: 0,
        }
    }

    /// Appends an event, honouring the cap.
    pub fn push(&mut self, event: TraceEvent) {
        match self.cap {
            Some(cap) if self.events.len() >= cap => self.dropped += 1,
            _ => self.events.push(event),
        }
    }

    /// Appends `count` events `event(0) .. event(count - 1)`, honouring the
    /// cap in O(retained) — events past the cap are counted as dropped
    /// arithmetically, without being constructed. Used to expand
    /// run-compressed batch events into their exact per-pulse stream.
    pub fn push_run<F: FnMut(u64) -> TraceEvent>(&mut self, count: u64, mut event: F) {
        let room = match self.cap {
            Some(cap) => (cap.saturating_sub(self.events.len())) as u64,
            None => count,
        };
        let retain = count.min(room);
        for i in 0..retain {
            self.events.push(event(i));
        }
        self.dropped += count - retain;
    }

    /// The recorded events.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events dropped due to the cap.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Sequence of delivery directions, in order — the encoding used by the
    /// paper's Definition 21 (solitude patterns): `Cw ↦ 0`, `Ccw ↦ 1`.
    #[must_use]
    pub fn delivery_directions(&self) -> Vec<Direction> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Deliver { direction, .. } => *direction,
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_trace_keeps_everything() {
        let mut t = Trace::new();
        for i in 0..100 {
            t.push(TraceEvent::Start { node: i });
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.dropped(), 0);
        assert!(!t.is_empty());
    }

    #[test]
    fn delivery_directions_filters_and_orders() {
        let mut t = Trace::new();
        t.push(TraceEvent::Start { node: 0 });
        t.push(TraceEvent::Deliver {
            node: 0,
            port: 0,
            seq: 0,
            direction: Some(Direction::Cw),
            at: 0,
        });
        t.push(TraceEvent::Send {
            node: 0,
            port: 1,
            seq: 1,
            direction: Some(Direction::Cw),
        });
        t.push(TraceEvent::Fault {
            kind: FaultKind::Duplicated,
            seq: 2,
        });
        t.push(TraceEvent::Deliver {
            node: 0,
            port: 1,
            seq: 1,
            direction: Some(Direction::Ccw),
            at: 0,
        });
        assert_eq!(t.delivery_directions(), vec![Direction::Cw, Direction::Ccw]);
    }
}
