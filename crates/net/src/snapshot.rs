//! State capture: the [`Snapshot`] trait, stable [`Fingerprint`] hashing,
//! and replayable [`Schedule`]s.
//!
//! The paper's guarantees are adversarial — Algorithms 1–3 must be correct
//! under *every* message interleaving — so correctness tooling needs to treat
//! simulation state as a first-class value: captured, restored, hashed, and
//! driven down a recorded schedule. This module provides the three primitives
//! the rest of the stack builds on:
//!
//! * [`Snapshot`]: extract/restore a protocol node's (or an engine's) state,
//!   plus a stable 64-bit `fingerprint` for visited-state deduplication.
//! * [`Fingerprint`]: a hand-rolled FNV-1a hasher whose output is identical
//!   across runs, platforms, and compiler versions (unlike
//!   `std::collections::hash_map::DefaultHasher`, which is randomly keyed).
//! * [`Schedule`]: the sequence of channel picks an execution made — enough,
//!   together with a seed-deterministic protocol, to replay the execution
//!   byte-for-byte (see `Simulation::replay`).

use crate::topology::ChannelId;
use std::fmt;
use std::str::FromStr;

/// State capture for a single component (protocol node, scheduler, engine).
///
/// Implementors expose their full mutable state as a cloneable value so that
/// simulations can be checkpointed, restored, and deduplicated:
///
/// * `extract`/`restore` must round-trip: restoring an extracted state makes
///   the component behave exactly as the original would from that point on.
/// * `fingerprint` must be *stable* (same state ⇒ same hash in every run —
///   use [`Fingerprint`], not `DefaultHasher`) and should depend on exactly
///   the state that influences future behaviour, so that two executions
///   reaching the same configuration by different paths collide.
pub trait Snapshot {
    /// The captured state value.
    type State: Clone + fmt::Debug;

    /// Captures the current state.
    fn extract(&self) -> Self::State;

    /// Restores a previously captured state.
    fn restore(&mut self, state: &Self::State);

    /// A stable 64-bit hash of the current state.
    fn fingerprint(&self) -> u64;
}

/// A streaming FNV-1a (64-bit) hasher with a run-stable output.
///
/// Exhaustive exploration stores one `u64` per visited configuration; the
/// hash must therefore be identical across processes so that recorded state
/// counts (and the bench tables built on them) are reproducible.
#[derive(Clone, Debug)]
pub struct Fingerprint(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fingerprint {
    /// Starts a new hash at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Fingerprint {
        Fingerprint(FNV_OFFSET)
    }

    /// Mixes one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    /// Mixes a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Mixes a 64-bit word (little-endian byte order).
    pub fn write_u64(&mut self, w: u64) {
        self.write_bytes(&w.to_le_bytes());
    }

    /// Mixes a `usize` (widened to 64 bits for cross-platform stability).
    pub fn write_usize(&mut self, w: usize) {
        self.write_u64(w as u64);
    }

    /// Mixes a boolean as one byte.
    pub fn write_bool(&mut self, b: bool) {
        self.write_u8(u8::from(b));
    }

    /// Finishes and returns the hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

/// A recorded sequence of channel picks — the adversary's moves.
///
/// Replaying a schedule against the same initial configuration (same ring,
/// same seeds) reproduces the original execution exactly; see
/// `Simulation::replay`. Schedules print as comma-separated channel indices
/// (`"0,3,2,1"`) and parse back via [`FromStr`], so a counterexample found by
/// the shrinker can be pasted straight into `co-ring replay --schedule ...`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    picks: Vec<ChannelId>,
}

impl Schedule {
    /// An empty schedule.
    #[must_use]
    pub fn new() -> Schedule {
        Schedule::default()
    }

    /// Wraps an explicit pick sequence.
    #[must_use]
    pub fn from_picks(picks: Vec<ChannelId>) -> Schedule {
        Schedule { picks }
    }

    /// Appends one pick.
    pub fn push(&mut self, pick: ChannelId) {
        self.picks.push(pick);
    }

    /// Number of picks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.picks.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.picks.is_empty()
    }

    /// The picks as a slice.
    #[must_use]
    pub fn picks(&self) -> &[ChannelId] {
        &self.picks
    }

    /// Iterates over the picks.
    pub fn iter(&self) -> impl Iterator<Item = ChannelId> + '_ {
        self.picks.iter().copied()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, pick) in self.picks.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", pick.index())?;
        }
        Ok(())
    }
}

/// Error parsing a [`Schedule`] from its textual form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseScheduleError(String);

impl fmt::Display for ParseScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid schedule: {}", self.0)
    }
}

impl std::error::Error for ParseScheduleError {}

impl FromStr for Schedule {
    type Err = ParseScheduleError;

    fn from_str(s: &str) -> Result<Schedule, ParseScheduleError> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Schedule::new());
        }
        let picks = s
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse::<usize>()
                    .map(ChannelId::from_index)
                    .map_err(|e| ParseScheduleError(format!("{tok:?}: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Schedule { picks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a 64 of "a" and "foobar" (published reference values).
        let mut h = Fingerprint::new();
        h.write_u8(b'a');
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fingerprint::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = Fingerprint::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fingerprint::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn schedule_display_parse_roundtrip() {
        let s = Schedule::from_picks(vec![
            ChannelId::from_index(0),
            ChannelId::from_index(3),
            ChannelId::from_index(2),
        ]);
        assert_eq!(s.to_string(), "0,3,2");
        assert_eq!("0,3,2".parse::<Schedule>().unwrap(), s);
        assert_eq!(" 0 , 3 , 2 ".parse::<Schedule>().unwrap(), s);
        assert_eq!("".parse::<Schedule>().unwrap(), Schedule::new());
        assert!("0,x".parse::<Schedule>().is_err());
    }
}
