//! State capture: the [`Snapshot`] trait, stable [`Fingerprint`] hashing,
//! and replayable [`Schedule`]s.
//!
//! The paper's guarantees are adversarial — Algorithms 1–3 must be correct
//! under *every* message interleaving — so correctness tooling needs to treat
//! simulation state as a first-class value: captured, restored, hashed, and
//! driven down a recorded schedule. This module provides the three primitives
//! the rest of the stack builds on:
//!
//! * [`Snapshot`]: extract/restore a protocol node's (or an engine's) state,
//!   plus a stable 64-bit `fingerprint` for visited-state deduplication.
//! * [`Fingerprint`]: a hand-rolled FNV-1a hasher whose output is identical
//!   across runs, platforms, and compiler versions (unlike
//!   `std::collections::hash_map::DefaultHasher`, which is randomly keyed).
//! * [`Schedule`]: the sequence of channel picks an execution made — enough,
//!   together with a seed-deterministic protocol, to replay the execution
//!   byte-for-byte (see `Simulation::replay`).
//! * a minimal little-endian byte codec ([`put_u64`] / [`put_bytes`] /
//!   [`ByteReader`]) shared by the on-disk artifacts of the exploration
//!   stack: fingerprint-store serialization (`dedup`) and resumable
//!   exploration checkpoints (`explore`). The format is deliberately dumb —
//!   fixed-width words, length-prefixed blobs, no varints — so the
//!   checkpoint layout documented in DESIGN.md §13 can be read back by eye.

use crate::topology::ChannelId;
use std::fmt;
use std::str::FromStr;

/// State capture for a single component (protocol node, scheduler, engine).
///
/// Implementors expose their full mutable state as a cloneable value so that
/// simulations can be checkpointed, restored, and deduplicated:
///
/// * `extract`/`restore` must round-trip: restoring an extracted state makes
///   the component behave exactly as the original would from that point on.
/// * `fingerprint` must be *stable* (same state ⇒ same hash in every run —
///   use [`Fingerprint`], not `DefaultHasher`) and should depend on exactly
///   the state that influences future behaviour, so that two executions
///   reaching the same configuration by different paths collide.
pub trait Snapshot {
    /// The captured state value.
    type State: Clone + fmt::Debug;

    /// Captures the current state.
    fn extract(&self) -> Self::State;

    /// Restores a previously captured state.
    fn restore(&mut self, state: &Self::State);

    /// A stable 64-bit hash of the current state.
    fn fingerprint(&self) -> u64;
}

/// A streaming FNV-1a (64-bit) hasher with a run-stable output.
///
/// Exhaustive exploration stores one `u64` per visited configuration; the
/// hash must therefore be identical across processes so that recorded state
/// counts (and the bench tables built on them) are reproducible.
#[derive(Clone, Debug)]
pub struct Fingerprint(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fingerprint {
    /// Starts a new hash at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Fingerprint {
        Fingerprint(FNV_OFFSET)
    }

    /// Mixes one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    /// Mixes a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Mixes a 64-bit word (little-endian byte order).
    pub fn write_u64(&mut self, w: u64) {
        self.write_bytes(&w.to_le_bytes());
    }

    /// Mixes a `usize` (widened to 64 bits for cross-platform stability).
    pub fn write_usize(&mut self, w: usize) {
        self.write_u64(w as u64);
    }

    /// Mixes a boolean as one byte.
    pub fn write_bool(&mut self, b: bool) {
        self.write_u8(u8::from(b));
    }

    /// Finishes and returns the hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

/// A recorded sequence of channel picks — the adversary's moves.
///
/// Replaying a schedule against the same initial configuration (same ring,
/// same seeds) reproduces the original execution exactly; see
/// `Simulation::replay`. Schedules print as comma-separated channel indices
/// (`"0,3,2,1"`) and parse back via [`FromStr`], so a counterexample found by
/// the shrinker can be pasted straight into `co-ring replay --schedule ...`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    picks: Vec<ChannelId>,
}

impl Schedule {
    /// An empty schedule.
    #[must_use]
    pub fn new() -> Schedule {
        Schedule::default()
    }

    /// Wraps an explicit pick sequence.
    #[must_use]
    pub fn from_picks(picks: Vec<ChannelId>) -> Schedule {
        Schedule { picks }
    }

    /// Appends one pick.
    pub fn push(&mut self, pick: ChannelId) {
        self.picks.push(pick);
    }

    /// Number of picks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.picks.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.picks.is_empty()
    }

    /// The picks as a slice.
    #[must_use]
    pub fn picks(&self) -> &[ChannelId] {
        &self.picks
    }

    /// Iterates over the picks.
    pub fn iter(&self) -> impl Iterator<Item = ChannelId> + '_ {
        self.picks.iter().copied()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, pick) in self.picks.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", pick.index())?;
        }
        Ok(())
    }
}

/// Error parsing a [`Schedule`] from its textual form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseScheduleError(String);

impl fmt::Display for ParseScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid schedule: {}", self.0)
    }
}

impl std::error::Error for ParseScheduleError {}

impl FromStr for Schedule {
    type Err = ParseScheduleError;

    fn from_str(s: &str) -> Result<Schedule, ParseScheduleError> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Schedule::new());
        }
        let picks = s
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse::<usize>()
                    .map(ChannelId::from_index)
                    .map_err(|e| ParseScheduleError(format!("{tok:?}: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Schedule { picks })
    }
}

/// Appends a `u32` in little-endian byte order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian byte order.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed (`u64`) byte blob.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// A bounds-checked cursor over bytes written with the `put_*` helpers.
///
/// Every accessor returns `Err` (with a position) instead of panicking, so a
/// truncated or corrupted checkpoint file surfaces as a parse error rather
/// than a crash.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| format!("truncated at byte {} (wanted {n} more)", self.pos))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn len(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| format!("length overflow at byte {}", self.pos))
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8], String> {
        let n = self.len()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, String> {
        let pos = self.pos;
        String::from_utf8(self.bytes()?.to_vec()).map_err(|_| format!("bad UTF-8 at byte {pos}"))
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Fails unless the whole buffer was consumed.
    pub fn finish(&self) -> Result<(), String> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after byte {}",
                self.buf.len() - self.pos,
                self.pos
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a 64 of "a" and "foobar" (published reference values).
        let mut h = Fingerprint::new();
        h.write_u8(b'a');
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fingerprint::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = Fingerprint::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fingerprint::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn schedule_display_parse_roundtrip() {
        let s = Schedule::from_picks(vec![
            ChannelId::from_index(0),
            ChannelId::from_index(3),
            ChannelId::from_index(2),
        ]);
        assert_eq!(s.to_string(), "0,3,2");
        assert_eq!("0,3,2".parse::<Schedule>().unwrap(), s);
        assert_eq!(" 0 , 3 , 2 ".parse::<Schedule>().unwrap(), s);
        assert_eq!("".parse::<Schedule>().unwrap(), Schedule::new());
        assert!("0,x".parse::<Schedule>().is_err());
    }

    #[test]
    fn byte_codec_roundtrips() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 1);
        put_bytes(&mut buf, &[1, 2, 3]);
        put_str(&mut buf, "mmap:4096");
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.string().unwrap(), "mmap:4096");
        r.finish().unwrap();
    }

    #[test]
    fn byte_reader_rejects_truncation_and_trailing_garbage() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 9);
        let mut r = ByteReader::new(&buf);
        // A length prefix of 9 with no payload behind it must error, not panic.
        assert!(r.bytes().is_err());
        let mut r = ByteReader::new(&buf);
        r.u32().unwrap();
        assert!(r.finish().is_err(), "4 unread bytes must be flagged");
    }
}
