//! The unified event core shared by every delivery engine.
//!
//! [`EventCore`] owns everything a discrete-event network simulation needs
//! that is independent of the topology's port discipline: per-channel FIFO
//! queues behind a pluggable [`QueueStore`], the incrementally maintained
//! ready list, scheduler dispatch, fault application ([`FaultPlan`]), budget
//! and quiescence accounting ([`Budget`], [`Outcome`]), aggregate statistics
//! ([`SimStats`]), and event emission to [`Observer`]s (including the
//! optional [`Trace`] and the [`RunMetrics`] run-summary collector).
//!
//! Two abstractions parameterize the core:
//!
//! * [`Topology`] — the channel table. The fixed two-port ring
//!   ([`Wiring`](crate::Wiring)) and the arbitrary-degree multigraph
//!   ([`GraphWiring`](crate::multiport::GraphWiring)) both implement it;
//!   ports are dense `usize` indices `0..degree(node)` at this layer.
//! * [`EventHandler`] — dispatch into the node programs. The typed facades
//!   ([`Simulation`](crate::Simulation) for rings,
//!   [`GraphSim`](crate::multiport::GraphSim) for multigraphs) implement it
//!   by wrapping the raw outbox in their port-typed contexts, so protocol
//!   code keeps its `Port`-typed (or degree-indexed) API while the core
//!   stays monomorphic over `usize`.
//!
//! The core's delivery semantics are the paper's model exactly — see the
//! [`sim`](crate::sim) module docs — and are byte-identical to the
//! pre-unification ring engine: sequence numbers are assigned in send order
//! and faults apply drop-then-duplicate. The ready list handed to the
//! scheduler is a dense array updated in place on enqueue/deliver
//! (swap-remove on empty), so its *order* is an implementation detail;
//! schedulers must pick by channel identity / head sequence, not by array
//! position (see [`Scheduler`]). Head sequence numbers are globally unique,
//! so key-based picks are well-defined regardless of array order.

use crate::clock::{LatencyPlan, VirtualClock};
use crate::faults::{FaultPlan, FaultStats};
use crate::message::{Message, UnitMessage};
use crate::port::Direction;
use crate::prof;
use crate::sched::{ChannelView, Scheduler};
use crate::snapshot::{Fingerprint, Schedule};
use crate::topology::ChannelId;
use crate::trace::{Trace, TraceEvent};
use rand::rngs::StdRng;
use std::collections::{BTreeSet, VecDeque};
use std::error::Error;
use std::fmt;

/// A channel table: how many nodes, how their ports map to directed FIFO
/// channels, and where each channel delivers.
///
/// Channels are dense indices `0..channel_count()`; ports are dense indices
/// `0..degree(node)`. The map `(node, port) → out_channel → endpoint` must
/// describe undirected links: following the channel leaving `(v, p)` to its
/// endpoint `(u, q)` and back along the channel leaving `(u, q)` lands at
/// `(v, p)` again.
pub trait Topology {
    /// Number of nodes.
    fn len(&self) -> usize;

    /// Whether the network has no nodes (never true for a valid topology).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of directed channels.
    fn channel_count(&self) -> usize;

    /// Number of ports of `node`.
    fn degree(&self, node: usize) -> usize;

    /// The channel carrying messages sent by `node` from `port`.
    fn out_channel(&self, node: usize, port: usize) -> usize;

    /// Destination `(node, in-port)` of `channel`.
    fn endpoint(&self, channel: usize) -> (usize, usize);

    /// Global direction tag of `channel`, if the topology defines one
    /// (rings tag channels CW/CCW; general graphs leave this `None`).
    fn direction(&self, channel: usize) -> Option<Direction> {
        let _ = channel;
        None
    }
}

/// Dispatch from the core into a set of node programs.
///
/// Implemented by the typed facades, not by protocol code: the facade wraps
/// the raw `(port, message)` outbox in its port-typed context and forwards
/// to the node's `on_start` / `on_message`.
pub trait EventHandler<M: Message> {
    /// Run node `node`'s start-up action, buffering sends into `outbox`.
    fn on_start(&mut self, node: usize, degree: usize, outbox: &mut Vec<(usize, M)>);

    /// Deliver `msg` on `port` to node `node`, buffering sends into `outbox`.
    fn on_message(
        &mut self,
        node: usize,
        degree: usize,
        port: usize,
        msg: M,
        outbox: &mut Vec<(usize, M)>,
    );

    /// Deliver a run of `count` identical messages (`msg` repeated, carrying
    /// consecutive sequence numbers) to node `node` in one fused call,
    /// buffering *run* sends `(port, message, count)` into `run_outbox`.
    ///
    /// Return `true` only if the node processed the run with exactly the
    /// state, output, and sends that `count` consecutive
    /// [`EventHandler::on_message`] calls would have produced, **and** the
    /// node cannot enter a terminating state strictly before the run's last
    /// pulse (termination is re-checked once, after the whole run). Handlers
    /// that cannot guarantee this must return `false` *without mutating any
    /// state* — the engine then re-delivers the same run pulse by pulse.
    ///
    /// The default declines, so every existing handler keeps its exact
    /// per-pulse behaviour under batch mode.
    fn on_message_run(
        &mut self,
        node: usize,
        degree: usize,
        port: usize,
        msg: &M,
        count: u64,
        run_outbox: &mut Vec<(usize, M, u64)>,
    ) -> bool {
        let _ = (node, degree, port, msg, count, run_outbox);
        false
    }

    /// Whether node `node` has entered a terminating state.
    fn is_terminated(&self, node: usize) -> bool;

    /// A virtual-clock timer armed by node `node` fired. `token` is the
    /// value the node passed when arming it; sends buffer into `outbox`
    /// exactly as in [`EventHandler::on_message`].
    ///
    /// Default: ignore — state-machine protocols predate timers and never
    /// arm any, so they compile (and behave) unchanged.
    fn on_timer(&mut self, node: usize, degree: usize, token: u64, outbox: &mut Vec<(usize, M)>) {
        let _ = (node, degree, token, outbox);
    }

    /// Collect `(delay, token)` timer requests node `node` made during the
    /// dispatch that just ran, pushing them into `sink`. The engine calls
    /// this after every `on_start` / `on_message` / `on_timer` dispatch and
    /// arms each request at `now + delay`.
    ///
    /// Default: no requests — again, existing handlers are unaffected.
    fn drain_timers(&mut self, node: usize, sink: &mut Vec<(u64, u64)>) {
        let _ = (node, sink);
    }
}

/// A model-violating channel fault, as reported to [`Observer`]s.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A sent message was silently discarded.
    Dropped,
    /// A spurious copy of a sent message was enqueued behind it.
    Duplicated,
    /// A spurious message was injected without any node sending it.
    Injected,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Dropped => "dropped",
            FaultKind::Duplicated => "duplicated",
            FaultKind::Injected => "injected",
        })
    }
}

/// One observable engine event, as delivered to [`Observer`]s.
///
/// Ports and channels are the core's dense `usize` indices; for a ring they
/// coincide with [`Port::index`](crate::Port::index) and
/// [`ChannelId::index`](crate::ChannelId::index).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EngineEvent {
    /// A node executed its initialisation step.
    Start {
        /// The node.
        node: usize,
    },
    /// A node sent a message.
    Send {
        /// Sending node.
        node: usize,
        /// Out-port used.
        port: usize,
        /// Global send sequence number.
        seq: u64,
        /// Direction tag of the channel, if any.
        direction: Option<Direction>,
    },
    /// A message was delivered to (and processed by) a live node.
    Deliver {
        /// Receiving node.
        node: usize,
        /// In-port the message arrived at.
        port: usize,
        /// Global send sequence number.
        seq: u64,
        /// Direction tag of the channel, if any.
        direction: Option<Direction>,
        /// Virtual time of the delivery (0 throughout untimed runs).
        at: u64,
    },
    /// A run of `count` messages with consecutive sequence numbers was
    /// delivered to one node in a single fused transition (batch mode).
    ///
    /// Semantically equal to `count` consecutive [`EngineEvent::Deliver`]
    /// (or [`EngineEvent::DeliverIgnored`]) events for seqs
    /// `seq .. seq + count`; the default [`Observer`] dispatch performs
    /// exactly that expansion, so observers unaware of batching stay
    /// correct. O(1)-minded observers override
    /// [`Observer::on_deliver_run`].
    DeliverRun {
        /// Receiving node.
        node: usize,
        /// In-port the messages arrived at.
        port: usize,
        /// Sequence number of the first message of the run.
        seq: u64,
        /// Number of messages delivered (≥ 2).
        count: u64,
        /// Direction tag of the channel, if any.
        direction: Option<Direction>,
        /// Virtual time of the delivery (0 throughout untimed runs —
        /// batching never happens under a latency plan).
        at: u64,
        /// Whether the receiver had already terminated (run ignored).
        ignored: bool,
    },
    /// A run of `count` messages with consecutive sequence numbers was sent
    /// out of one port in a single fused transition (batch mode) —
    /// semantically `count` consecutive [`EngineEvent::Send`]s.
    SendRun {
        /// Sending node.
        node: usize,
        /// Out-port used.
        port: usize,
        /// Sequence number of the first message of the run.
        seq: u64,
        /// Number of messages sent (≥ 1).
        count: u64,
        /// Direction tag of the channel, if any.
        direction: Option<Direction>,
    },
    /// A message arrived at a terminated node and was ignored.
    DeliverIgnored {
        /// Receiving (terminated) node.
        node: usize,
        /// In-port the message arrived at.
        port: usize,
        /// Global send sequence number.
        seq: u64,
    },
    /// A node entered its terminating state.
    Terminate {
        /// The node.
        node: usize,
    },
    /// A channel fault was applied.
    Fault {
        /// What happened.
        kind: FaultKind,
        /// Sequence number of the affected message.
        seq: u64,
    },
    /// A virtual-clock timer fired.
    TimerFired {
        /// The node whose timer fired.
        node: usize,
        /// The token the node armed the timer with.
        token: u64,
        /// Virtual time at which it fired (≥ the armed deadline).
        at: u64,
    },
}

/// A passive spectator of engine events.
///
/// Observers replace the old `run_with` closure hook as the instrumentation
/// seam: [`Trace`] records events verbatim, [`RunMetrics`] aggregates them,
/// and `co-core`'s invariant monitors hang off the facade-level observer
/// (which additionally sees global simulation state between events).
///
/// Either override [`Observer::on_event`] and match, or override the
/// per-kind methods — the default `on_event` dispatches to them.
pub trait Observer {
    /// Called on every engine event; dispatches to the per-kind methods by
    /// default.
    fn on_event(&mut self, event: &EngineEvent) {
        match *event {
            EngineEvent::Start { node } => self.on_start(node),
            EngineEvent::Send {
                node,
                port,
                seq,
                direction,
            } => self.on_send(node, port, seq, direction),
            EngineEvent::Deliver {
                node,
                port,
                seq,
                direction,
                at: _,
            } => self.on_deliver(node, port, seq, direction),
            EngineEvent::DeliverIgnored { node, port, seq } => {
                self.on_deliver_ignored(node, port, seq);
            }
            EngineEvent::DeliverRun {
                node,
                port,
                seq,
                count,
                direction,
                at: _,
                ignored,
            } => self.on_deliver_run(node, port, seq, count, direction, ignored),
            EngineEvent::SendRun {
                node,
                port,
                seq,
                count,
                direction,
            } => self.on_send_run(node, port, seq, count, direction),
            EngineEvent::Terminate { node } => self.on_terminate(node),
            EngineEvent::Fault { kind, seq } => self.on_fault(kind, seq),
            EngineEvent::TimerFired { node, token, at } => self.on_timer_fired(node, token, at),
        }
    }

    /// A node ran its start-up action.
    fn on_start(&mut self, node: usize) {
        let _ = node;
    }

    /// A node sent a message.
    fn on_send(&mut self, node: usize, port: usize, seq: u64, direction: Option<Direction>) {
        let _ = (node, port, seq, direction);
    }

    /// A live node received a message.
    fn on_deliver(&mut self, node: usize, port: usize, seq: u64, direction: Option<Direction>) {
        let _ = (node, port, seq, direction);
    }

    /// A terminated node ignored a message.
    fn on_deliver_ignored(&mut self, node: usize, port: usize, seq: u64) {
        let _ = (node, port, seq);
    }

    /// A run of `count` messages (seqs `seq .. seq + count`) was delivered
    /// in one fused batch transition.
    ///
    /// The default expands the run into `count` per-pulse
    /// [`Observer::on_deliver`] / [`Observer::on_deliver_ignored`] calls, so
    /// any observer written against the per-pulse stream sees exactly the
    /// events a per-pulse engine would have emitted. Observers that can
    /// aggregate in O(1) (like [`RunMetrics`]) override this.
    fn on_deliver_run(
        &mut self,
        node: usize,
        port: usize,
        seq: u64,
        count: u64,
        direction: Option<Direction>,
        ignored: bool,
    ) {
        for i in 0..count {
            if ignored {
                self.on_deliver_ignored(node, port, seq + i);
            } else {
                self.on_deliver(node, port, seq + i, direction);
            }
        }
    }

    /// A run of `count` messages (seqs `seq .. seq + count`) was sent in one
    /// fused batch transition. Default: expand into `count` per-pulse
    /// [`Observer::on_send`] calls.
    fn on_send_run(
        &mut self,
        node: usize,
        port: usize,
        seq: u64,
        count: u64,
        direction: Option<Direction>,
    ) {
        for i in 0..count {
            self.on_send(node, port, seq + i, direction);
        }
    }

    /// A node terminated.
    fn on_terminate(&mut self, node: usize) {
        let _ = node;
    }

    /// A channel fault was applied.
    fn on_fault(&mut self, kind: FaultKind, seq: u64) {
        let _ = (kind, seq);
    }

    /// A virtual-clock timer fired.
    fn on_timer_fired(&mut self, node: usize, token: u64, at: u64) {
        let _ = (node, token, at);
    }
}

impl Observer for () {
    fn on_event(&mut self, _event: &EngineEvent) {}
}

impl<O: Observer + ?Sized> Observer for &mut O {
    fn on_event(&mut self, event: &EngineEvent) {
        (**self).on_event(event);
    }
}

impl<O: Observer> Observer for Option<O> {
    fn on_event(&mut self, event: &EngineEvent) {
        if let Some(o) = self {
            o.on_event(event);
        }
    }
}

impl<A: Observer, B: Observer> Observer for (A, B) {
    fn on_event(&mut self, event: &EngineEvent) {
        self.0.on_event(event);
        self.1.on_event(event);
    }
}

impl Observer for Trace {
    fn on_event(&mut self, event: &EngineEvent) {
        // Run-compressed batch events expand to their exact per-pulse
        // stream: a trace never shows batching, so traced runs compare
        // byte-for-byte across batch-on and batch-off engines. The cap-aware
        // bulk push keeps a capped trace O(cap), not O(count).
        match *event {
            EngineEvent::DeliverRun {
                node,
                port,
                seq,
                count,
                direction,
                at,
                ignored,
            } => {
                if ignored {
                    self.push_run(count, |i| TraceEvent::DeliverIgnored {
                        node,
                        port,
                        seq: seq + i,
                    });
                } else {
                    self.push_run(count, |i| TraceEvent::Deliver {
                        node,
                        port,
                        seq: seq + i,
                        direction,
                        at,
                    });
                }
                return;
            }
            EngineEvent::SendRun {
                node,
                port,
                seq,
                count,
                direction,
            } => {
                self.push_run(count, |i| TraceEvent::Send {
                    node,
                    port,
                    seq: seq + i,
                    direction,
                });
                return;
            }
            _ => {}
        }
        self.push(match *event {
            EngineEvent::Start { node } => TraceEvent::Start { node },
            EngineEvent::Send {
                node,
                port,
                seq,
                direction,
            } => TraceEvent::Send {
                node,
                port,
                seq,
                direction,
            },
            EngineEvent::Deliver {
                node,
                port,
                seq,
                direction,
                at,
            } => TraceEvent::Deliver {
                node,
                port,
                seq,
                direction,
                at,
            },
            EngineEvent::DeliverIgnored { node, port, seq } => {
                TraceEvent::DeliverIgnored { node, port, seq }
            }
            EngineEvent::Terminate { node } => TraceEvent::Terminate { node },
            EngineEvent::Fault { kind, seq } => TraceEvent::Fault { kind, seq },
            EngineEvent::TimerFired { node, token, at } => {
                TraceEvent::TimerFired { node, token, at }
            }
            EngineEvent::DeliverRun { .. } | EngineEvent::SendRun { .. } => {
                unreachable!("run events are expanded above")
            }
        });
    }
}

/// Run-summary metrics aggregated from engine events.
///
/// A cheap always-on-capable [`Observer`]: unlike a [`Trace`] it keeps O(1)
/// state regardless of run length, so it can instrument the full
/// `n(2·ID_max + 1)`-pulse executions of the paper's algorithms.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Messages sent by nodes.
    pub sends: u64,
    /// Pulses (messages) delivered to live nodes — batch-invariant: a fused
    /// run of `k` pulses counts `k` here, exactly as `k` per-pulse
    /// deliveries would.
    pub pulses_delivered: u64,
    /// Engine transitions that performed deliveries. Per-pulse, every
    /// delivery is its own transition (`transitions == pulses_delivered +
    /// ignored`); in batch mode a fused run of `k` pulses is *one*
    /// transition, so `pulses_delivered / transitions` is the measured
    /// amortization factor.
    pub transitions: u64,
    /// Messages delivered to terminated nodes and ignored.
    pub ignored: u64,
    /// Nodes that entered a terminating state.
    pub terminations: u64,
    /// Channel faults applied (drops + duplications + injections).
    pub faults: u64,
    /// Peak number of messages simultaneously in transit.
    pub max_in_flight: u64,
    /// High-water mark of queued bytes across all channels, as accounted by
    /// the engine's [`QueueStore`].
    ///
    /// This field is *backend-dependent by design* — it is the measured
    /// footprint of the storage actually in use, not an estimate, so the
    /// same run costs far fewer bytes under [`QueueBackend::Counter`] than
    /// under [`QueueBackend::Vec`]. Filled in by the owning engine (events
    /// carry no size information); stays 0 when `RunMetrics` is used as a
    /// free-standing observer.
    pub peak_queue_bytes: u64,
    in_flight: u64,
}

impl RunMetrics {
    /// A fresh collector.
    #[must_use]
    pub fn new() -> RunMetrics {
        RunMetrics::default()
    }

    fn gain(&mut self) {
        self.gain_many(1);
    }

    fn gain_many(&mut self, count: u64) {
        self.in_flight += count;
        self.max_in_flight = self.max_in_flight.max(self.in_flight);
    }

    fn lose(&mut self) {
        self.lose_many(1);
    }

    fn lose_many(&mut self, count: u64) {
        self.in_flight = self.in_flight.saturating_sub(count);
    }
}

impl Observer for RunMetrics {
    fn on_send(&mut self, _node: usize, _port: usize, _seq: u64, _direction: Option<Direction>) {
        self.sends += 1;
        self.gain();
    }

    fn on_deliver(&mut self, _node: usize, _port: usize, _seq: u64, _dir: Option<Direction>) {
        self.pulses_delivered += 1;
        self.transitions += 1;
        self.lose();
    }

    fn on_deliver_ignored(&mut self, _node: usize, _port: usize, _seq: u64) {
        self.ignored += 1;
        self.transitions += 1;
        self.lose();
    }

    fn on_deliver_run(
        &mut self,
        _node: usize,
        _port: usize,
        _seq: u64,
        count: u64,
        _direction: Option<Direction>,
        ignored: bool,
    ) {
        if ignored {
            self.ignored += count;
        } else {
            self.pulses_delivered += count;
        }
        self.transitions += 1;
        self.lose_many(count);
    }

    fn on_send_run(
        &mut self,
        _node: usize,
        _port: usize,
        _seq: u64,
        count: u64,
        _direction: Option<Direction>,
    ) {
        self.sends += count;
        self.gain_many(count);
    }

    fn on_terminate(&mut self, _node: usize) {
        self.terminations += 1;
    }

    fn on_fault(&mut self, kind: FaultKind, _seq: u64) {
        self.faults += 1;
        match kind {
            // A dropped message was counted at its send but never travels.
            FaultKind::Dropped => self.lose(),
            FaultKind::Duplicated | FaultKind::Injected => self.gain(),
        }
    }
}

/// Step/message budget bounding a run.
///
/// The paper's algorithms all reach quiescence in finite time; the budget
/// exists to turn a would-be hang (a bug) into a reported
/// [`Outcome::BudgetExhausted`] instead of an endless loop.
///
/// The unit is *pulses* (individual message deliveries), **not** engine
/// transitions: a batched run that fuses `k` pulses into one transition
/// consumes `k` budget, so budget-gated runs stop at the same pulse — with
/// the same [`SimStats`] — whether batching is on or off.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of pulses delivered before aborting.
    pub max_steps: u64,
}

impl Budget {
    /// A budget of `max_steps` pulses (single-message deliveries).
    #[must_use]
    pub fn steps(max_steps: u64) -> Budget {
        Budget { max_steps }
    }
}

impl Default for Budget {
    /// 50 million deliveries — far above `n(2·ID_max + 1)` for every
    /// configuration exercised in this repository.
    fn default() -> Budget {
        Budget {
            max_steps: 50_000_000,
        }
    }
}

/// How a run ended.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every node terminated, and no message was ever delivered to (or left
    /// queued toward) a terminated node — the paper's *quiescent
    /// termination*.
    QuiescentTerminated,
    /// Every node terminated but some messages were still in transit when
    /// nodes terminated (they were delivered and ignored).
    TerminatedNonQuiescent,
    /// No messages remain in transit but at least one node has not
    /// terminated — *quiescence*, the guarantee of stabilizing algorithms.
    Quiescent,
    /// The step budget ran out with messages still in transit.
    BudgetExhausted,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Outcome::QuiescentTerminated => "quiescent termination",
            Outcome::TerminatedNonQuiescent => "termination (non-quiescent)",
            Outcome::Quiescent => "quiescence without termination",
            Outcome::BudgetExhausted => "budget exhausted",
        };
        f.write_str(s)
    }
}

/// Aggregate counters of a simulation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total messages sent (= the paper's message complexity when the run
    /// reaches quiescence).
    pub total_sent: u64,
    /// Total messages delivered to live nodes.
    pub total_delivered: u64,
    /// Messages delivered to terminated nodes and ignored.
    pub delivered_to_terminated: u64,
    /// Deliveries performed (steps executed).
    pub steps: u64,
    /// Sent counts by direction tag: `[CW, CCW]` (untagged channels are not
    /// counted here).
    pub sent_by_direction: [u64; 2],
    /// Per node: messages sent from each port, indexed `[node][port]`
    /// (inner length = the node's degree).
    pub sent_by_port: Vec<Vec<u64>>,
    /// Per node: messages received (processed) at each port.
    pub recv_by_port: Vec<Vec<u64>>,
    /// Virtual-clock timers fired (0 throughout untimed runs and for
    /// protocols that never arm timers).
    pub timer_fires: u64,
}

impl SimStats {
    fn for_topology<T: Topology>(topology: &T) -> SimStats {
        let per_port: Vec<Vec<u64>> = (0..topology.len())
            .map(|v| vec![0; topology.degree(v)])
            .collect();
        SimStats {
            sent_by_port: per_port.clone(),
            recv_by_port: per_port,
            ..SimStats::default()
        }
    }

    /// Total messages sent by one node.
    #[must_use]
    pub fn sent_by_node(&self, node: usize) -> u64 {
        self.sent_by_port[node].iter().sum()
    }

    /// Total messages received (processed) by one node.
    #[must_use]
    pub fn recv_by_node(&self, node: usize) -> u64 {
        self.recv_by_port[node].iter().sum()
    }
}

/// Result of running an engine to quiescence or budget exhaustion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: Outcome,
    /// Total messages sent — the paper's *message complexity* of the
    /// execution.
    pub total_sent: u64,
    /// Deliveries performed.
    pub steps: u64,
    /// Messages still in transit at the end (0 unless the budget ran out).
    pub in_flight: u64,
}

/// One delivery, as reported by [`EventCore::step`] — the topology-neutral
/// analogue of [`StepInfo`](crate::StepInfo), with dense `usize` indices.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EngineStep {
    /// The channel that delivered.
    pub channel: usize,
    /// The receiving node.
    pub node: usize,
    /// The in-port the message arrived at.
    pub port: usize,
    /// Global send sequence number of the delivered message.
    pub seq: u64,
    /// Direction tag of the channel, if any.
    pub direction: Option<Direction>,
    /// Whether the receiver had already terminated (message ignored).
    pub ignored: bool,
    /// Virtual time of the delivery (0 throughout untimed runs).
    pub at: u64,
}

/// One batched engine transition, as reported by
/// [`EventCore::try_step_batch`]: `count` pulses of one channel delivered
/// under a single scheduler pick.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EngineBatch {
    /// The first pulse of the batch (its `seq` is the run's first sequence
    /// number; the remaining pulses carry `seq + 1 .. seq + count`).
    pub step: EngineStep,
    /// Number of pulses delivered in this transition (≥ 1; 1 means the
    /// transition degenerated to an ordinary per-pulse step).
    pub count: u64,
}

/// A scheduler misbehaved and the engine refused to act on its answer.
///
/// Returned by [`EventCore::try_step`] / [`crate::Simulation::try_step`]
/// *before* any engine state is mutated, so a buggy adversary cannot wedge
/// the core half-updated — the explorer can report the offending scheduler
/// and carry on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The scheduler returned an index outside the ready list it was shown.
    SchedulerOutOfRange {
        /// The index the scheduler returned.
        pick: usize,
        /// Length of the ready list it was picking from.
        ready_len: usize,
    },
    /// The scheduler's indexed fast path named a channel with no queued
    /// messages (a broken incremental index).
    SchedulerIdleChannel {
        /// The channel the scheduler named.
        channel: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EngineError::SchedulerOutOfRange { pick, ready_len } => write!(
                f,
                "scheduler returned out-of-range index {pick} (ready list has {ready_len} entries)"
            ),
            EngineError::SchedulerIdleChannel { channel } => write!(
                f,
                "scheduler's indexed pick named channel {channel}, which is not ready"
            ),
        }
    }
}

impl Error for EngineError {}

/// Which storage backend an [`EventCore`]'s [`QueueStore`] uses.
///
/// The two backends are observationally identical — same delivery order,
/// same sequence numbers, same [`RunReport`]s and snapshot fingerprints —
/// and differ only in memory footprint and constant factors (see the
/// backend-equivalence property suite in `tests/backend_equivalence.rs`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum QueueBackend {
    /// Per-channel `VecDeque` of full `(message, seq)` envelopes. Works for
    /// any payload type; a queued message costs `size_of::<M>() + 8` bytes.
    #[default]
    Vec,
    /// Run-length counters over sequence numbers, for [`UnitMessage`]
    /// payloads only: a channel holds `(head_seq, len)` runs of consecutive
    /// seqs, so a burst of a million queued pulses costs one 16-byte run.
    /// Fault-injected duplicates and interleaved sends spill into further
    /// runs; the representation stays lossless because deliveries
    /// reconstruct the payload from `M::default()`.
    Counter,
}

impl QueueBackend {
    /// Both backends, in a fixed order (for test/bench grids).
    pub const ALL: [QueueBackend; 2] = [QueueBackend::Vec, QueueBackend::Counter];

    /// Parses `"vec"` / `"counter"` (case-insensitive).
    #[must_use]
    pub fn parse(name: &str) -> Option<QueueBackend> {
        match name.to_ascii_lowercase().as_str() {
            "vec" => Some(QueueBackend::Vec),
            "counter" => Some(QueueBackend::Counter),
            _ => None,
        }
    }
}

impl fmt::Display for QueueBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QueueBackend::Vec => "vec",
            QueueBackend::Counter => "counter",
        })
    }
}

#[derive(Clone, Debug)]
struct Envelope<M> {
    msg: M,
    seq: u64,
}

/// One channel of the counter backend: FIFO runs of consecutive sequence
/// numbers. `runs[0]` is the head run (next delivery = its start seq); the
/// rest is the spill list created by sequence gaps (interleaved sends on
/// other channels) or fault-injected duplicates.
#[derive(Clone, Debug, Default)]
struct PulseRuns {
    runs: VecDeque<(u64, u64)>,
    len: usize,
}

impl PulseRuns {
    fn push(&mut self, seq: u64) -> bool {
        self.len += 1;
        if let Some(last) = self.runs.back_mut() {
            if last.0 + last.1 == seq {
                last.1 += 1;
                return false;
            }
        }
        self.runs.push_back((seq, 1));
        true
    }

    fn pop(&mut self) -> Option<(u64, bool)> {
        let front = self.runs.front_mut()?;
        let seq = front.0;
        self.len -= 1;
        if front.1 == 1 {
            self.runs.pop_front();
            Some((seq, true))
        } else {
            front.0 += 1;
            front.1 -= 1;
            Some((seq, false))
        }
    }

    fn head_seq(&self) -> Option<u64> {
        self.runs.front().map(|&(start, _)| start)
    }

    /// Length of the head run (0 when empty): how many messages with
    /// consecutive seqs the channel would deliver before hitting a gap.
    fn head_run_len(&self) -> u64 {
        self.runs.front().map_or(0, |&(_, len)| len)
    }

    /// Pops up to `max` messages off the head run in one operation.
    /// Returns `(first_seq, taken, run_freed)`.
    fn pop_run(&mut self, max: u64) -> Option<(u64, u64, bool)> {
        let front = self.runs.front_mut()?;
        let seq = front.0;
        let take = front.1.min(max);
        self.len -= take as usize;
        if take == front.1 {
            self.runs.pop_front();
            Some((seq, take, true))
        } else {
            front.0 += take;
            front.1 -= take;
            Some((seq, take, false))
        }
    }

    /// Pushes `count` messages with consecutive seqs `seq .. seq + count`
    /// in one operation. Returns whether a new run entry was created.
    fn push_run(&mut self, seq: u64, count: u64) -> bool {
        self.len += count as usize;
        if let Some(last) = self.runs.back_mut() {
            if last.0 + last.1 == seq {
                last.1 += count;
                return false;
            }
        }
        self.runs.push_back((seq, count));
        true
    }
}

const RUN_BYTES: usize = std::mem::size_of::<(u64, u64)>();

#[derive(Clone, Debug)]
enum StoreRepr<M> {
    Vec(Vec<VecDeque<Envelope<M>>>),
    Counter { proto: M, chans: Vec<PulseRuns> },
}

/// Pluggable per-channel FIFO storage — the concrete state behind a
/// [`QueueBackend`].
///
/// The store owns only message content and sequence numbers; ready-list
/// maintenance, statistics, and fault logic live in [`EventCore`]. It also
/// keeps the byte accounting ([`QueueStore::queue_bytes`] /
/// [`QueueStore::peak_queue_bytes`]) that backs `RunMetrics::
/// peak_queue_bytes` and the E17 memory column.
#[derive(Clone, Debug)]
pub struct QueueStore<M> {
    repr: StoreRepr<M>,
    total: usize,
    cur_bytes: usize,
    peak_bytes: usize,
}

impl<M: Message> QueueStore<M> {
    fn vec(channels: usize) -> QueueStore<M> {
        QueueStore {
            repr: StoreRepr::Vec((0..channels).map(|_| VecDeque::new()).collect()),
            total: 0,
            cur_bytes: 0,
            peak_bytes: 0,
        }
    }

    fn counter(channels: usize) -> QueueStore<M>
    where
        M: UnitMessage,
    {
        QueueStore {
            repr: StoreRepr::Counter {
                proto: M::default(),
                chans: vec![PulseRuns::default(); channels],
            },
            total: 0,
            cur_bytes: 0,
            peak_bytes: 0,
        }
    }

    /// The backend this store implements.
    #[must_use]
    pub fn backend(&self) -> QueueBackend {
        match self.repr {
            StoreRepr::Vec(_) => QueueBackend::Vec,
            StoreRepr::Counter { .. } => QueueBackend::Counter,
        }
    }

    /// Number of channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        match &self.repr {
            StoreRepr::Vec(queues) => queues.len(),
            StoreRepr::Counter { chans, .. } => chans.len(),
        }
    }

    /// Messages queued on one channel.
    #[must_use]
    pub fn len(&self, channel: usize) -> usize {
        match &self.repr {
            StoreRepr::Vec(queues) => queues[channel].len(),
            StoreRepr::Counter { chans, .. } => chans[channel].len,
        }
    }

    /// Whether no messages are queued anywhere.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Messages queued across all channels.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// Sequence number of the next message `channel` would deliver.
    #[must_use]
    pub fn head_seq(&self, channel: usize) -> Option<u64> {
        match &self.repr {
            StoreRepr::Vec(queues) => queues[channel].front().map(|e| e.seq),
            StoreRepr::Counter { chans, .. } => chans[channel].head_seq(),
        }
    }

    /// Bytes of queued payload currently held (envelopes for the vec
    /// backend, run entries for the counter backend; container overhead is
    /// not counted).
    #[must_use]
    pub fn queue_bytes(&self) -> usize {
        self.cur_bytes
    }

    /// High-water mark of [`QueueStore::queue_bytes`] over the store's
    /// lifetime.
    #[must_use]
    pub fn peak_queue_bytes(&self) -> usize {
        self.peak_bytes
    }

    fn push(&mut self, channel: usize, msg: M, seq: u64) {
        self.total += 1;
        match &mut self.repr {
            StoreRepr::Vec(queues) => {
                queues[channel].push_back(Envelope { msg, seq });
                self.cur_bytes += std::mem::size_of::<Envelope<M>>();
            }
            StoreRepr::Counter { chans, .. } => {
                if chans[channel].push(seq) {
                    self.cur_bytes += RUN_BYTES;
                }
            }
        }
        if self.cur_bytes > self.peak_bytes {
            self.peak_bytes = self.cur_bytes;
        }
    }

    fn pop(&mut self, channel: usize) -> Option<(M, u64)> {
        match &mut self.repr {
            StoreRepr::Vec(queues) => {
                let envelope = queues[channel].pop_front()?;
                self.total -= 1;
                self.cur_bytes -= std::mem::size_of::<Envelope<M>>();
                Some((envelope.msg, envelope.seq))
            }
            StoreRepr::Counter { proto, chans } => {
                let (seq, run_freed) = chans[channel].pop()?;
                self.total -= 1;
                if run_freed {
                    self.cur_bytes -= RUN_BYTES;
                }
                Some((proto.clone(), seq))
            }
        }
    }

    /// Length of `channel`'s head run: the number of queued messages with
    /// consecutive sequence numbers starting at the head. This is the
    /// maximal batchable prefix — delivering it in one transition is
    /// indistinguishable from delivering it pulse by pulse.
    ///
    /// The counter backend reads it off the head run entry in O(1); the vec
    /// backend scans envelopes (capped at [`QueueStore::VEC_RUN_SCAN_CAP`]
    /// so the probe stays O(1) too — a longer run is merely reported
    /// shorter, which only shrinks a batch, never breaks one).
    #[must_use]
    pub fn head_run_len(&self, channel: usize) -> u64 {
        match &self.repr {
            StoreRepr::Vec(queues) => {
                let q = &queues[channel];
                let Some(first) = q.front() else { return 0 };
                let mut len = 1u64;
                for e in q.iter().skip(1).take(Self::VEC_RUN_SCAN_CAP - 1) {
                    if e.seq != first.seq + len {
                        break;
                    }
                    len += 1;
                }
                len
            }
            StoreRepr::Counter { chans, .. } => chans[channel].head_run_len(),
        }
    }

    /// Cap on the vec backend's head-run probe (see
    /// [`QueueStore::head_run_len`]).
    pub const VEC_RUN_SCAN_CAP: usize = 64;

    /// Pops up to `max` head-run messages of `channel` in one operation,
    /// returning `(payload, first_seq, taken)`.
    ///
    /// Counter backend only — all messages of a counter run share the
    /// prototype payload, so one clone represents the whole run. The vec
    /// backend returns `None` (payloads may differ per envelope); callers
    /// fall back to per-pulse pops.
    fn pop_run(&mut self, channel: usize, max: u64) -> Option<(M, u64, u64)> {
        match &mut self.repr {
            StoreRepr::Vec(_) => None,
            StoreRepr::Counter { proto, chans } => {
                let (seq, taken, run_freed) = chans[channel].pop_run(max)?;
                self.total -= taken as usize;
                if run_freed {
                    self.cur_bytes -= RUN_BYTES;
                }
                Some((proto.clone(), seq, taken))
            }
        }
    }

    /// The payload every message of `channel`'s head run carries, when the
    /// store can prove they are all identical (counter backend: the shared
    /// prototype). `None` on the vec backend.
    fn run_payload(&self, channel: usize) -> Option<M> {
        match &self.repr {
            StoreRepr::Vec(_) => None,
            StoreRepr::Counter { proto, chans } => {
                if chans[channel].len == 0 {
                    None
                } else {
                    Some(proto.clone())
                }
            }
        }
    }

    /// Pushes `count` copies of `msg` with consecutive seqs
    /// `seq .. seq + count` in one operation — O(1) on the counter backend
    /// (at most one new run entry), O(count) envelope pushes on vec.
    fn push_run(&mut self, channel: usize, msg: M, seq: u64, count: u64) {
        self.total += count as usize;
        match &mut self.repr {
            StoreRepr::Vec(queues) => {
                for i in 0..count {
                    queues[channel].push_back(Envelope {
                        msg: msg.clone(),
                        seq: seq + i,
                    });
                }
                self.cur_bytes += count as usize * std::mem::size_of::<Envelope<M>>();
            }
            StoreRepr::Counter { chans, .. } => {
                if chans[channel].push_run(seq, count) {
                    self.cur_bytes += RUN_BYTES;
                }
            }
        }
        if self.cur_bytes > self.peak_bytes {
            self.peak_bytes = self.cur_bytes;
        }
    }
}

/// A full checkpoint of an [`EventCore`]'s mutable run state.
///
/// Captures channel queues (messages and their sequence numbers), node
/// termination flags, the global send counter, aggregate statistics, fault
/// counters, the ready-list order, and the scheduler's serialized state —
/// everything that influences the rest of the run. Restoring a snapshot
/// makes the core behave exactly as the captured one would from that point
/// on, including under ready-order-sensitive adversaries such as
/// [`crate::sched::RandomScheduler`].
///
/// Deliberately *not* captured: traces, metrics, attached observers, and the
/// recorded schedule beyond its length at capture time. Those are
/// instrumentation of one particular execution; a restore rewinds the
/// engine, not the observer pipeline.
#[derive(Clone, Debug)]
pub struct CoreSnapshot<M> {
    terminated: Vec<bool>,
    queues: QueueStore<M>,
    ready_order: Vec<usize>,
    stats: SimStats,
    send_seq: u64,
    started: bool,
    fault_stats: FaultStats,
    scheduler_state: Vec<u64>,
    recorded_len: usize,
    clock: u64,
    timer_seq: u64,
    timers: Vec<TimerEntry>,
    latency: Option<LatencySnapshot>,
}

/// One pending timer: `(fire_at, arm_seq, node, token)`. Ordered by deadline
/// first, then arm order, so same-deadline timers fire in the order they
/// were armed — deterministically.
type TimerEntry = (u64, u64, usize, u64);

/// The mutable half of a latency plan: per-channel sample streams and the
/// arrival timestamps of every queued message.
#[derive(Clone, Debug)]
struct LatencyState {
    plan: LatencyPlan,
    /// One independent generator per channel (see
    /// [`LatencyPlan::channel_rng`]).
    rngs: Vec<StdRng>,
    /// Arrival timestamps of queued messages, FIFO-parallel to the
    /// [`QueueStore`]'s per-channel contents.
    arrivals: Vec<VecDeque<u64>>,
    /// Last arrival handed out per channel — enforces per-channel FIFO in
    /// virtual time (a later send never arrives before an earlier one).
    last_arrival: Vec<u64>,
}

impl LatencyState {
    fn new(plan: LatencyPlan, channels: usize) -> LatencyState {
        LatencyState {
            rngs: (0..channels).map(|c| plan.channel_rng(c)).collect(),
            arrivals: vec![VecDeque::new(); channels],
            last_arrival: vec![0; channels],
            plan,
        }
    }
}

/// Snapshot of a [`LatencyState`] (the plan itself is engine configuration,
/// not run state, and is not captured).
#[derive(Clone, Debug)]
struct LatencySnapshot {
    rng_states: Vec<[u64; 4]>,
    arrivals: Vec<Vec<u64>>,
    last_arrival: Vec<u64>,
}

const NOT_READY: usize = usize::MAX;

/// The generic event core: queues, scheduler dispatch, faults, accounting,
/// and observer emission over any [`Topology`].
///
/// Node programs live *outside* the core, behind an [`EventHandler`] passed
/// into [`EventCore::start`] / [`EventCore::step`] / [`EventCore::run`] —
/// this keeps the core free of the protocol type and lets the facades hand
/// out `&[P]` node access without interior mutability.
pub struct EventCore<M: Message, T: Topology> {
    topology: T,
    terminated: Vec<bool>,
    queues: QueueStore<M>,
    /// Dense array of non-empty channels, updated in place on
    /// enqueue/deliver (swap-remove on empty) so `step()` never rebuilds
    /// it — O(1) + scheduler cost per step regardless of how many channels
    /// are active. Order is arbitrary (a function of run history);
    /// `ready_pos` maps channel index → position, `NOT_READY` if absent.
    ready: Vec<ChannelView>,
    ready_pos: Vec<usize>,
    scheduler: Box<dyn Scheduler>,
    /// Whether `try_step` consults the scheduler's incremental index
    /// (`indexed_pick`) before falling back to the O(ready) scan `pick`.
    /// The index itself is always maintained (the hooks are cheap no-ops for
    /// scan-only schedulers), so toggling is safe at any point mid-run.
    indexed_picks: bool,
    /// Whether `run` / `try_step_batch` may fuse whole pulse runs into
    /// single transitions. Engine *configuration* (like `indexed_picks`),
    /// not run state: absent from [`CoreSnapshot`], safe to toggle between
    /// steps, and proven observationally equivalent to per-pulse stepping by
    /// `tests/batch_equivalence.rs`.
    batch: bool,
    stats: SimStats,
    send_seq: u64,
    started: bool,
    trace: Option<Trace>,
    metrics: Option<RunMetrics>,
    observers: Vec<Box<dyn Observer>>,
    outbox: Vec<(usize, M)>,
    /// Recycled sink for [`EventHandler::on_message_run`] run sends.
    run_outbox: Vec<(usize, M, u64)>,
    faults: FaultPlan,
    fault_stats: FaultStats,
    /// Channel picks made so far, when schedule recording is enabled.
    recorded: Option<Vec<ChannelId>>,
    /// The discrete virtual clock. Advances to the arrival timestamp of each
    /// delivery while a latency plan is installed; stays at 0 (and costs
    /// nothing) in untimed runs.
    clock: VirtualClock,
    /// Pending timers ordered by `(fire_at, arm_seq)` — see [`TimerEntry`].
    timers: BTreeSet<TimerEntry>,
    /// Monotone arm counter providing the deterministic same-deadline order.
    timer_seq: u64,
    /// `None` (the default) is the untimed fast path, byte-identical to the
    /// pre-clock engine; `Some` carries the seeded per-channel latency
    /// streams and queued-message arrival timestamps.
    latency: Option<LatencyState>,
    /// Recycled sink for [`EventHandler::drain_timers`] requests.
    timer_buf: Vec<(u64, u64)>,
}

impl<M: Message, T: Topology> EventCore<M, T> {
    /// Creates an idle core over `topology` with the default
    /// [`QueueBackend::Vec`] store.
    #[must_use]
    pub fn new(topology: T, scheduler: Box<dyn Scheduler>) -> EventCore<M, T> {
        let store = QueueStore::vec(topology.channel_count());
        EventCore::with_store(topology, scheduler, store)
    }

    /// Creates an idle core using the given queue backend.
    ///
    /// [`QueueBackend::Counter`] requires a [`UnitMessage`] payload — the
    /// type system enforces that the compact store is only used where it is
    /// lossless.
    #[must_use]
    pub fn with_backend(
        topology: T,
        scheduler: Box<dyn Scheduler>,
        backend: QueueBackend,
    ) -> EventCore<M, T>
    where
        M: UnitMessage,
    {
        let store = match backend {
            QueueBackend::Vec => QueueStore::vec(topology.channel_count()),
            QueueBackend::Counter => QueueStore::counter(topology.channel_count()),
        };
        EventCore::with_store(topology, scheduler, store)
    }

    fn with_store(topology: T, scheduler: Box<dyn Scheduler>, store: QueueStore<M>) -> Self {
        let n = topology.len();
        let channels = topology.channel_count();
        let stats = SimStats::for_topology(&topology);
        EventCore {
            topology,
            terminated: vec![false; n],
            queues: store,
            ready: Vec::new(),
            ready_pos: vec![NOT_READY; channels],
            scheduler,
            indexed_picks: true,
            batch: false,
            stats,
            send_seq: 0,
            started: false,
            trace: None,
            metrics: None,
            observers: Vec::new(),
            outbox: Vec::new(),
            run_outbox: Vec::new(),
            faults: FaultPlan::new(),
            fault_stats: FaultStats::default(),
            recorded: None,
            clock: VirtualClock::new(),
            timers: BTreeSet::new(),
            timer_seq: 0,
            latency: None,
            timer_buf: Vec::new(),
        }
    }

    /// The topology driving this core.
    #[must_use]
    pub fn topology(&self) -> &T {
        &self.topology
    }

    /// The queue storage backend in use.
    #[must_use]
    pub fn queue_backend(&self) -> QueueBackend {
        self.queues.backend()
    }

    /// Bytes of queued messages currently held by the [`QueueStore`].
    #[must_use]
    pub fn queue_bytes(&self) -> usize {
        self.queues.queue_bytes()
    }

    /// High-water mark of [`EventCore::queue_bytes`] over the run so far.
    #[must_use]
    pub fn peak_queue_bytes(&self) -> usize {
        self.queues.peak_queue_bytes()
    }

    /// Installs a plan of model-violating channel faults (experiment E11).
    ///
    /// The paper's model forbids drops and injections; use this to observe
    /// what that assumption buys. Must be called before the run starts.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// Counters of faults actually applied so far.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Installs a seeded per-channel latency plan, switching the virtual
    /// clock on. Must be called before the run starts.
    ///
    /// An all-zero plan (the default) keeps the engine on its untimed fast
    /// path: no latency state is allocated, every arrival timestamp stays 0,
    /// and the run is byte-identical to one on a core that never heard of
    /// clocks.
    ///
    /// # Panics
    ///
    /// Panics if the run has already started — arrival timestamps are
    /// assigned at send time and cannot be retrofitted.
    pub fn set_latency(&mut self, plan: LatencyPlan) {
        assert!(
            !self.started,
            "latency plan must be installed before the run starts"
        );
        self.latency = if plan.is_zero() {
            None
        } else {
            Some(LatencyState::new(plan, self.topology.channel_count()))
        };
    }

    /// Whether a (non-degenerate) latency plan is installed.
    #[must_use]
    pub fn latency_enabled(&self) -> bool {
        self.latency.is_some()
    }

    /// The current virtual time. Stays 0 throughout untimed runs.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Arms a timer for `node`: [`EventHandler::on_timer`] will run with
    /// `token` once the virtual clock reaches `now + delay`. Timers are
    /// first-class events — they survive snapshots and fire deterministically
    /// (deadline order, arm order on ties).
    ///
    /// Normally reached via [`EventHandler::drain_timers`]; public for
    /// drivers that schedule timers outside any dispatch.
    pub fn arm_timer(&mut self, node: usize, delay: u64, token: u64) {
        let fire_at = self.clock.now().saturating_add(delay);
        let arm_seq = self.timer_seq;
        self.timer_seq += 1;
        self.timers.insert((fire_at, arm_seq, node, token));
    }

    /// Number of pending (armed, not yet fired) timers.
    #[must_use]
    pub fn pending_timers(&self) -> usize {
        self.timers.len()
    }

    /// Enables event tracing (unbounded if `cap` is `None`).
    pub fn enable_trace(&mut self, cap: Option<usize>) {
        self.trace = Some(match cap {
            Some(c) => Trace::with_capacity(c),
            None => Trace::new(),
        });
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Enables the O(1) run-summary metrics collector.
    pub fn enable_metrics(&mut self) {
        self.metrics = Some(RunMetrics::new());
    }

    /// The collected run metrics, if enabled.
    #[must_use]
    pub fn metrics(&self) -> Option<&RunMetrics> {
        self.metrics.as_ref()
    }

    /// Attaches an additional boxed observer for the rest of the run.
    pub fn attach_observer(&mut self, observer: Box<dyn Observer>) {
        self.observers.push(observer);
    }

    /// Replaces the delivery adversary for subsequent steps.
    ///
    /// Used by replay (install a [`crate::sched::ReplayScheduler`] on a
    /// fresh core) and by exploration (drive the core channel-by-channel
    /// while keeping a trivial scheduler installed). The incoming
    /// scheduler's incremental index is seeded from the current ready set,
    /// so a mid-run swap keeps indexed picks exact.
    pub fn set_scheduler(&mut self, scheduler: Box<dyn Scheduler>) {
        self.scheduler = scheduler;
        self.scheduler.rebuild_index(&self.ready);
    }

    /// Enables or disables the indexed fast-pick path (on by default).
    ///
    /// Indexed and scan picks are bit-identical for every built-in
    /// scheduler (proved by `tests/sched_index_equivalence.rs`); the toggle
    /// exists to measure and cross-check the two paths. The index stays
    /// maintained either way, so the switch is safe mid-run.
    pub fn set_indexed_picks(&mut self, enabled: bool) {
        self.indexed_picks = enabled;
    }

    /// Whether the indexed fast-pick path is enabled.
    #[must_use]
    pub fn indexed_picks(&self) -> bool {
        self.indexed_picks
    }

    /// Enables or disables run-batched macro-stepping (off by default).
    ///
    /// With batching on, [`EventCore::run`] (and explicit
    /// [`EventCore::try_step_batch`] calls) may deliver an entire head run
    /// of consecutive pulses in one fused transition when no observer,
    /// fault horizon, latency timer, scheduler, or budget boundary can
    /// distinguish the interleaving; at every such boundary the engine
    /// falls back to per-pulse delivery. Batch-on and batch-off runs
    /// produce byte-identical [`RunReport`]s, [`SimStats`], fingerprints,
    /// recorded schedules, and traces (see `tests/batch_equivalence.rs`).
    pub fn set_batch(&mut self, enabled: bool) {
        self.batch = enabled;
    }

    /// Whether run-batched macro-stepping is enabled.
    #[must_use]
    pub fn batch_enabled(&self) -> bool {
        self.batch
    }

    /// Starts recording the sequence of channel picks as a [`Schedule`].
    pub fn enable_schedule_recording(&mut self) {
        if self.recorded.is_none() {
            self.recorded = Some(Vec::new());
        }
    }

    /// The schedule recorded so far, if recording was enabled.
    #[must_use]
    pub fn recorded_schedule(&self) -> Option<Schedule> {
        self.recorded
            .as_ref()
            .map(|picks| Schedule::from_picks(picks.clone()))
    }

    /// Captures the core's full mutable run state as a [`CoreSnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> CoreSnapshot<M> {
        CoreSnapshot {
            terminated: self.terminated.clone(),
            queues: self.queues.clone(),
            ready_order: self.ready.iter().map(|v| v.id.index()).collect(),
            stats: self.stats.clone(),
            send_seq: self.send_seq,
            started: self.started,
            fault_stats: self.fault_stats,
            scheduler_state: self.scheduler.save_state(),
            recorded_len: self.recorded.as_ref().map_or(0, Vec::len),
            clock: self.clock.now(),
            timer_seq: self.timer_seq,
            timers: self.timers.iter().copied().collect(),
            latency: self.latency.as_ref().map(|lat| LatencySnapshot {
                rng_states: lat.rngs.iter().map(StdRng::to_state).collect(),
                arrivals: lat
                    .arrivals
                    .iter()
                    .map(|q| q.iter().copied().collect())
                    .collect(),
                last_arrival: lat.last_arrival.clone(),
            }),
        }
    }

    /// Restores a state previously captured by [`EventCore::snapshot`].
    ///
    /// The snapshot must come from a core over the same topology (same
    /// channel count), the same [`QueueBackend`], and the same scheduler
    /// type.
    pub fn restore(&mut self, snapshot: &CoreSnapshot<M>) {
        assert_eq!(
            snapshot.queues.channel_count(),
            self.queues.channel_count(),
            "snapshot is for a different topology"
        );
        assert_eq!(
            snapshot.queues.backend(),
            self.queues.backend(),
            "snapshot is for a different queue backend"
        );
        assert_eq!(
            snapshot.latency.is_some(),
            self.latency.is_some(),
            "snapshot is for a different latency mode"
        );
        self.terminated.clone_from(&snapshot.terminated);
        self.queues.clone_from(&snapshot.queues);
        self.clock.set(snapshot.clock);
        self.timer_seq = snapshot.timer_seq;
        self.timers = snapshot.timers.iter().copied().collect();
        if let (Some(lat), Some(snap)) = (&mut self.latency, &snapshot.latency) {
            for (rng, state) in lat.rngs.iter_mut().zip(&snap.rng_states) {
                *rng = StdRng::from_state(*state);
            }
            for (q, saved) in lat.arrivals.iter_mut().zip(&snap.arrivals) {
                q.clear();
                q.extend(saved.iter().copied());
            }
            lat.last_arrival.clone_from(&snap.last_arrival);
        }
        self.rebuild_ready(&snapshot.ready_order);
        self.stats.clone_from(&snapshot.stats);
        self.send_seq = snapshot.send_seq;
        self.started = snapshot.started;
        self.fault_stats = snapshot.fault_stats;
        self.scheduler.restore_state(&snapshot.scheduler_state);
        // Indexes are derived state: absent from `CoreSnapshot` and
        // `save_state` layouts by design, rebuilt from the restored ready
        // set instead.
        self.scheduler.rebuild_index(&self.ready);
        if let Some(rec) = &mut self.recorded {
            rec.truncate(snapshot.recorded_len);
        }
    }

    /// Rebuilds the dense ready array (in the given order) from the queue
    /// store, re-establishing the `ready`/`ready_pos` invariant after a
    /// restore.
    fn rebuild_ready(&mut self, order: &[usize]) {
        self.ready.clear();
        self.ready_pos.fill(NOT_READY);
        for &ch in order {
            let head_seq = self
                .queues
                .head_seq(ch)
                .expect("snapshot ready order lists only non-empty channels");
            self.ready_pos[ch] = self.ready.len();
            self.ready.push(ChannelView {
                id: ChannelId::from_index(ch),
                queue_len: self.queues.len(ch),
                head_seq,
                direction: self.topology.direction(ch),
                arrival: self.head_arrival(ch),
            });
        }
    }

    /// Arrival timestamp of `channel`'s head message (0 in untimed runs).
    fn head_arrival(&self, channel: usize) -> u64 {
        self.latency
            .as_ref()
            .and_then(|lat| lat.arrivals[channel].front().copied())
            .unwrap_or(0)
    }

    fn observing(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some() || !self.observers.is_empty()
    }

    fn emit(&mut self, event: EngineEvent) {
        let t = prof::start();
        if let Some(tr) = &mut self.trace {
            tr.on_event(&event);
        }
        if let Some(m) = &mut self.metrics {
            m.on_event(&event);
        }
        for o in &mut self.observers {
            o.on_event(&event);
        }
        prof::stop(prof::Phase::Observe, t);
    }

    /// Injects a spurious message into a channel, as forbidden channel
    /// noise would (experiment E11). Counted in [`EventCore::fault_stats`]
    /// but *not* in `total_sent` — no node sent it.
    pub fn inject(&mut self, channel: usize, msg: M) {
        let seq = self.send_seq;
        self.send_seq += 1;
        self.fault_stats.injected += 1;
        if self.observing() {
            self.emit(EngineEvent::Fault {
                kind: FaultKind::Injected,
                seq,
            });
        }
        self.enqueue(channel, msg, seq);
    }

    fn enqueue(&mut self, channel: usize, msg: M, seq: u64) {
        let t = prof::start();
        // Stamp the message's virtual arrival: a latency sample from the
        // channel's stream, clamped to the previous arrival so per-channel
        // FIFO holds in virtual time too. Untimed runs skip all of this and
        // every arrival stays 0.
        let arrival = match &mut self.latency {
            None => 0,
            Some(lat) => {
                let delay = lat.plan.model_for(channel).sample(&mut lat.rngs[channel]);
                let at = self
                    .clock
                    .now()
                    .saturating_add(delay)
                    .max(lat.last_arrival[channel]);
                lat.last_arrival[channel] = at;
                lat.arrivals[channel].push_back(at);
                at
            }
        };
        self.queues.push(channel, msg, seq);
        let pos = self.ready_pos[channel];
        if pos == NOT_READY {
            self.ready_pos[channel] = self.ready.len();
            let view = ChannelView {
                id: ChannelId::from_index(channel),
                queue_len: 1,
                head_seq: seq,
                direction: self.topology.direction(channel),
                arrival,
            };
            self.ready.push(view);
            self.scheduler.on_ready(view);
        } else {
            self.ready[pos].queue_len += 1;
            let view = self.ready[pos];
            self.scheduler.on_head_change(view);
        }
        if let Some(m) = &mut self.metrics {
            let peak = self.queues.peak_queue_bytes() as u64;
            if peak > m.peak_queue_bytes {
                m.peak_queue_bytes = peak;
            }
        }
        prof::stop(prof::Phase::Enqueue, t);
    }

    fn flush_outbox(&mut self, node: usize, outbox: &mut Vec<(usize, M)>) {
        for (port, msg) in outbox.drain(..) {
            let channel = self.topology.out_channel(node, port);
            let seq = self.send_seq;
            self.send_seq += 1;
            self.stats.total_sent += 1;
            self.stats.sent_by_port[node][port] += 1;
            let direction = self.topology.direction(channel);
            if let Some(d) = direction {
                self.stats.sent_by_direction[d.index()] += 1;
            }
            if self.observing() {
                self.emit(EngineEvent::Send {
                    node,
                    port,
                    seq,
                    direction,
                });
            }
            if self.faults.should_drop(seq) {
                self.fault_stats.dropped += 1;
                self.emit(EngineEvent::Fault {
                    kind: FaultKind::Dropped,
                    seq,
                });
                continue;
            }
            if self.faults.should_duplicate(seq) {
                self.fault_stats.duplicated += 1;
                let dup_seq = self.send_seq;
                self.send_seq += 1;
                self.emit(EngineEvent::Fault {
                    kind: FaultKind::Duplicated,
                    seq: dup_seq,
                });
                self.enqueue(channel, msg.clone(), seq);
                self.enqueue(channel, msg, dup_seq);
            } else {
                self.enqueue(channel, msg, seq);
            }
        }
    }

    fn note_termination<H: EventHandler<M>>(&mut self, node: usize, handler: &H) {
        if !self.terminated[node] && handler.is_terminated(node) {
            self.terminated[node] = true;
            if self.observing() {
                self.emit(EngineEvent::Terminate { node });
            }
        }
    }

    /// Runs every node's start-up action (in node order). Idempotent.
    pub fn start<H: EventHandler<M>>(&mut self, handler: &mut H) {
        if self.started {
            return;
        }
        self.started = true;
        for node in 0..self.topology.len() {
            if self.observing() {
                self.emit(EngineEvent::Start { node });
            }
            let mut outbox = std::mem::take(&mut self.outbox);
            handler.on_start(node, self.topology.degree(node), &mut outbox);
            self.flush_outbox(node, &mut outbox);
            self.outbox = outbox;
            self.drain_timer_requests(node, handler);
            self.note_termination(node, handler);
        }
    }

    /// Collects and arms the timer requests `node` made during the dispatch
    /// that just ran (start, message, or timer).
    fn drain_timer_requests<H: EventHandler<M>>(&mut self, node: usize, handler: &mut H) {
        let mut buf = std::mem::take(&mut self.timer_buf);
        handler.drain_timers(node, &mut buf);
        for (delay, token) in buf.drain(..) {
            self.arm_timer(node, delay, token);
        }
        self.timer_buf = buf;
    }

    /// Fires every pending timer whose deadline the clock has reached, in
    /// deterministic `(deadline, arm order)` order. Each firing dispatches
    /// [`EventHandler::on_timer`], flushes its sends, and collects any
    /// re-armed timers — which fire in the same sweep if already due.
    ///
    /// Timers of terminated nodes are discarded silently (the analogue of
    /// `DeliverIgnored`, minus the event: nothing was in flight).
    fn fire_due_timers<H: EventHandler<M>>(&mut self, handler: &mut H) {
        while let Some(&entry) = self.timers.first() {
            let (fire_at, _arm_seq, node, token) = entry;
            if fire_at > self.clock.now() {
                break;
            }
            let t = prof::start();
            self.timers.pop_first();
            if self.terminated[node] {
                prof::stop(prof::Phase::Timer, t);
                continue;
            }
            self.stats.timer_fires += 1;
            let at = self.clock.now();
            if self.observing() {
                self.emit(EngineEvent::TimerFired { node, token, at });
            }
            let mut outbox = std::mem::take(&mut self.outbox);
            handler.on_timer(node, self.topology.degree(node), token, &mut outbox);
            prof::stop(prof::Phase::Timer, t);
            self.flush_outbox(node, &mut outbox);
            self.outbox = outbox;
            self.drain_timer_requests(node, handler);
            self.note_termination(node, handler);
        }
    }

    /// Delivers one message chosen by the scheduler, validating the
    /// scheduler's answer before acting on it.
    ///
    /// Starts the run if [`EventCore::start`] has not run yet. Returns
    /// `Ok(None)` when the network is quiescent (no messages in transit)
    /// and `Err` — with the engine state untouched — if the scheduler
    /// returns an out-of-range index.
    pub fn try_step<H: EventHandler<M>>(
        &mut self,
        handler: &mut H,
    ) -> Result<Option<EngineStep>, EngineError> {
        match self.pick_next(handler)? {
            Some(channel) => Ok(Some(self.deliver(handler, channel))),
            None => Ok(None),
        }
    }

    /// The shared pick preamble of [`EventCore::try_step`] and
    /// [`EventCore::try_step_batch`]: services timers, then asks the
    /// scheduler for the next channel. Returns `Ok(None)` on quiescence.
    fn pick_next<H: EventHandler<M>>(
        &mut self,
        handler: &mut H,
    ) -> Result<Option<usize>, EngineError> {
        self.start(handler);
        // Service the virtual clock before each pick: fire every due timer,
        // and when nothing is deliverable, jump the clock to the earliest
        // pending deadline (virtual time has no reason to pass slowly). A
        // protocol that perpetually re-arms timers without ever sending will
        // spin here — the same bug class as an infinite relay, and just as
        // much the protocol's fault. Untimed runs never arm timers, so this
        // is one `is_empty` check on their hot path.
        while !self.timers.is_empty() {
            self.fire_due_timers(handler);
            if !self.ready.is_empty() {
                break;
            }
            match self.timers.first() {
                Some(&(fire_at, ..)) => self.clock.advance_to(fire_at),
                None => break,
            }
        }
        if self.ready.is_empty() {
            return Ok(None);
        }
        let t = prof::start();
        let picked = if self.indexed_picks {
            match self.scheduler.indexed_pick() {
                Some(id) => {
                    let ch = id.index();
                    if ch >= self.ready_pos.len() || self.ready_pos[ch] == NOT_READY {
                        prof::stop(prof::Phase::Pick, t);
                        return Err(EngineError::SchedulerIdleChannel { channel: ch });
                    }
                    ch
                }
                // No index kept (e.g. `RandomScheduler`): scan fallback.
                None => self.scan_pick()?,
            }
        } else {
            self.scan_pick()?
        };
        prof::stop(prof::Phase::Pick, t);
        Ok(Some(picked))
    }

    /// Delivers up to `max_pulses` pulses in one batched transition: one
    /// scheduler pick, then — when the pick's head run, the scheduler's
    /// [`Scheduler::batch_quota`] contract, and the engine's boundary
    /// conditions (no latency plan, no pending timers, fault horizon
    /// exhausted for the fused send path) allow it — the whole batchable
    /// prefix of that channel's head run in one go.
    ///
    /// Falls back to an ordinary single delivery (`count == 1`) at every
    /// boundary, so interleaving `try_step_batch` with `try_step` is always
    /// sound. Returns `Ok(None)` on quiescence, and the same errors as
    /// [`EventCore::try_step`] — with the engine untouched — on a
    /// misbehaving scheduler.
    pub fn try_step_batch<H: EventHandler<M>>(
        &mut self,
        handler: &mut H,
        max_pulses: u64,
    ) -> Result<Option<EngineBatch>, EngineError> {
        let Some(channel) = self.pick_next(handler)? else {
            return Ok(None);
        };
        let quota = self.batch_quota(channel, max_pulses);
        if quota <= 1 {
            return Ok(Some(EngineBatch {
                step: self.deliver(handler, channel),
                count: 1,
            }));
        }
        // The scheduler asserted (via `batch_quota`) that `quota` back-to-
        // back picks would all land on this channel; account the fused
        // picks before delivering so replay cursors and recording logs stay
        // byte-exact with per-pulse stepping.
        self.scheduler
            .note_batch(ChannelId::from_index(channel), quota);
        Ok(Some(self.deliver_run(handler, channel, quota)))
    }

    /// Panicking form of [`EventCore::try_step_batch`].
    pub fn step_batch<H: EventHandler<M>>(
        &mut self,
        handler: &mut H,
        max_pulses: u64,
    ) -> Option<EngineBatch> {
        match self.try_step_batch(handler, max_pulses) {
            Ok(batch) => batch,
            Err(e) => panic!("{e}"),
        }
    }

    /// How many pulses the transition about to deliver from `channel` may
    /// fuse: 1 at every boundary that could distinguish the interleaving,
    /// otherwise the scheduler-approved prefix of the head run.
    fn batch_quota(&mut self, channel: usize, max_pulses: u64) -> u64 {
        // Latency plans timestamp every pulse individually (each delivery
        // can advance the clock and re-order against timers), and pending
        // timers may come due between any two pulses: both force per-pulse.
        if max_pulses <= 1 || self.latency.is_some() || !self.timers.is_empty() {
            return 1;
        }
        let run = self.queues.head_run_len(channel);
        if run <= 1 {
            return 1;
        }
        let view = self.ready[self.ready_pos[channel]];
        self.scheduler
            .batch_quota(view, run)
            .clamp(1, run)
            .min(max_pulses)
    }

    /// The O(ready) pick path: shows the scheduler the ready slice and
    /// validates its answer. Returns the picked *channel* index.
    fn scan_pick(&mut self) -> Result<usize, EngineError> {
        let pick = self.scheduler.pick(&self.ready);
        if pick >= self.ready.len() {
            return Err(EngineError::SchedulerOutOfRange {
                pick,
                ready_len: self.ready.len(),
            });
        }
        Ok(self.ready[pick].id.index())
    }

    /// Delivers one message chosen by the scheduler.
    ///
    /// Starts the run if [`EventCore::start`] has not run yet. Returns
    /// `None` when the network is quiescent (no messages in transit).
    ///
    /// # Panics
    ///
    /// Panics if the scheduler returns an out-of-range index (before any
    /// engine state is mutated — see [`EventCore::try_step`] for the
    /// non-panicking form).
    pub fn step<H: EventHandler<M>>(&mut self, handler: &mut H) -> Option<EngineStep> {
        match self.try_step(handler) {
            Ok(step) => step,
            Err(e) => panic!("{e}"),
        }
    }

    /// Delivers the head message of a *specific* non-empty channel,
    /// bypassing the scheduler.
    ///
    /// This is the branching primitive of exhaustive exploration: after
    /// restoring a snapshot, each ready channel (see
    /// [`EventCore::ready_channels`]) is one successor configuration.
    /// Starts the run if needed; returns `None` if the channel is empty.
    pub fn step_channel<H: EventHandler<M>>(
        &mut self,
        handler: &mut H,
        channel: usize,
    ) -> Option<EngineStep> {
        self.start(handler);
        if self.queues.len(channel) == 0 {
            return None;
        }
        Some(self.deliver(handler, channel))
    }

    /// Delivers up to `max_pulses` pulses of the head run of a *specific*
    /// non-empty channel in one transition, bypassing the scheduler — the
    /// batched branching primitive of macro-step exploration.
    ///
    /// No scheduler pick happens, so no scheduler quota applies; only the
    /// engine's own boundaries (latency plan, pending timers, fault
    /// horizon, handler declines) force per-pulse fallback. The resulting
    /// configuration — and hence its fingerprint — is byte-identical to
    /// delivering the same pulses through `count` [`EventCore::step_channel`]
    /// calls. Starts the run if needed; returns `None` if the channel is
    /// empty.
    pub fn step_channel_batch<H: EventHandler<M>>(
        &mut self,
        handler: &mut H,
        channel: usize,
        max_pulses: u64,
    ) -> Option<EngineBatch> {
        self.start(handler);
        if self.queues.len(channel) == 0 {
            return None;
        }
        let quota = if max_pulses <= 1 || self.latency.is_some() || !self.timers.is_empty() {
            1
        } else {
            self.queues.head_run_len(channel).clamp(1, max_pulses)
        };
        if quota <= 1 {
            return Some(EngineBatch {
                step: self.deliver(handler, channel),
                count: 1,
            });
        }
        Some(self.deliver_run(handler, channel, quota))
    }

    /// Indices of channels with at least one queued message, sorted.
    #[must_use]
    pub fn ready_channels(&self) -> Vec<usize> {
        let mut channels: Vec<usize> = self.ready.iter().map(|v| v.id.index()).collect();
        channels.sort_unstable();
        channels
    }

    /// Number of messages queued on `channel`.
    #[must_use]
    pub fn queue_len(&self, channel: usize) -> usize {
        self.queues.len(channel)
    }

    /// Whether the start-up actions have run.
    #[must_use]
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// A stable 64-bit hash of the *network-level* configuration: started
    /// flag, per-channel queue lengths, termination flags, virtual clock,
    /// and pending timers — node states excluded.
    ///
    /// Because node state is not hashed, two different node representations
    /// (a hand-written state machine and its async-facade twin) driving
    /// identical executions agree on this hash after every step.
    #[must_use]
    pub fn net_fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_bool(self.started);
        for ch in 0..self.topology.channel_count() {
            fp.write_usize(self.queues.len(ch));
        }
        for &t in &self.terminated {
            fp.write_bool(t);
        }
        fp.write_u64(self.clock.now());
        for &(fire_at, arm_seq, node, token) in &self.timers {
            fp.write_u64(fire_at);
            fp.write_u64(arm_seq);
            fp.write_usize(node);
            fp.write_u64(token);
        }
        fp.finish()
    }

    /// The next global send sequence number (total sends attempted so far,
    /// including dropped and duplicated ones).
    ///
    /// This is the counter [`FaultPlan`] triggers on; the explorer needs it
    /// to keep fingerprints sound while a fault plan is still active.
    #[must_use]
    pub fn send_seq(&self) -> u64 {
        self.send_seq
    }

    fn deliver<H: EventHandler<M>>(&mut self, handler: &mut H, channel: usize) -> EngineStep {
        if let Some(rec) = &mut self.recorded {
            rec.push(ChannelId::from_index(channel));
        }
        let direction = self.topology.direction(channel);
        let (msg, seq) = self
            .queues
            .pop(channel)
            .expect("delivered channel is non-empty");
        // Consume the message's arrival timestamp and advance the virtual
        // clock to it (a no-op throughout untimed runs: the clock stays 0).
        if let Some(lat) = &mut self.latency {
            let arrival = lat.arrivals[channel]
                .pop_front()
                .expect("every queued message has an arrival timestamp");
            self.clock.advance_to(arrival);
        }
        let at = self.clock.now();
        let pos = self.ready_pos[channel];
        debug_assert_ne!(pos, NOT_READY, "delivered channel is in the ready array");
        match self.queues.head_seq(channel) {
            Some(next_head) => {
                let next_arrival = self.head_arrival(channel);
                let view = &mut self.ready[pos];
                view.queue_len -= 1;
                view.head_seq = next_head;
                view.arrival = next_arrival;
                let view = *view;
                self.scheduler.on_head_change(view);
            }
            None => {
                self.ready.swap_remove(pos);
                self.ready_pos[channel] = NOT_READY;
                if let Some(moved) = self.ready.get(pos) {
                    self.ready_pos[moved.id.index()] = pos;
                }
                self.scheduler.on_unready(ChannelId::from_index(channel));
            }
        }
        let (node, port) = self.topology.endpoint(channel);
        self.stats.steps += 1;

        let ignored = self.terminated[node];
        if ignored {
            self.stats.delivered_to_terminated += 1;
            if self.observing() {
                self.emit(EngineEvent::DeliverIgnored { node, port, seq });
            }
        } else {
            self.stats.total_delivered += 1;
            self.stats.recv_by_port[node][port] += 1;
            if self.observing() {
                self.emit(EngineEvent::Deliver {
                    node,
                    port,
                    seq,
                    direction,
                    at,
                });
            }
            let t = prof::start();
            let mut outbox = std::mem::take(&mut self.outbox);
            handler.on_message(node, self.topology.degree(node), port, msg, &mut outbox);
            prof::stop(prof::Phase::Deliver, t);
            self.flush_outbox(node, &mut outbox);
            self.outbox = outbox;
            self.drain_timer_requests(node, handler);
            self.note_termination(node, handler);
        }

        EngineStep {
            channel,
            node,
            port,
            seq,
            direction,
            ignored,
            at,
        }
    }

    /// Delivers `count ≥ 2` pulses of `channel` under one already-made
    /// scheduler pick.
    ///
    /// Tries the fused O(1) commit first; when any fused-path precondition
    /// fails (vec backend, active fault horizon, handler without an exact
    /// closed form) it degenerates to `count` ordinary [`EventCore::deliver`]
    /// calls — trivially byte-identical to per-pulse stepping, still
    /// amortizing the scheduler pick.
    fn deliver_run<H: EventHandler<M>>(
        &mut self,
        handler: &mut H,
        channel: usize,
        count: u64,
    ) -> EngineBatch {
        debug_assert!(count >= 2);
        // The fault plan triggers on send seqs; once the next seq is past
        // the plan's horizon no future send can drop or duplicate, so the
        // fused send path (which skips per-seq fault checks) is exact.
        let faults_inert = match self.faults.horizon() {
            None => true,
            Some(h) => self.send_seq > h,
        };
        if faults_inert {
            if let Some(batch) = self.deliver_fused(handler, channel, count) {
                return batch;
            }
        }
        let step = self.deliver(handler, channel);
        for _ in 1..count {
            self.deliver(handler, channel);
        }
        EngineBatch { step, count }
    }

    /// The fused batch commit: dispatch the whole run in one handler call
    /// (or bulk-ignore it on a terminated receiver), then account pops,
    /// ready/scheduler maintenance, stats, events, and run sends in O(1)
    /// per run instead of O(count).
    ///
    /// Returns `None` — with no state mutated — when the store cannot prove
    /// the run's payloads identical (vec backend) or the handler declines
    /// the closed form; the caller falls back to the per-pulse loop.
    fn deliver_fused<H: EventHandler<M>>(
        &mut self,
        handler: &mut H,
        channel: usize,
        count: u64,
    ) -> Option<EngineBatch> {
        let (node, port) = self.topology.endpoint(channel);
        let ignored = self.terminated[node];
        let mut run_outbox = std::mem::take(&mut self.run_outbox);
        run_outbox.clear();
        let accepted = if ignored {
            // Bulk-ignore needs no dispatch, only a run pop (counter-only).
            self.queues.backend() == QueueBackend::Counter
        } else {
            match self.queues.run_payload(channel) {
                Some(payload) => {
                    let t = prof::start();
                    let ok = handler.on_message_run(
                        node,
                        self.topology.degree(node),
                        port,
                        &payload,
                        count,
                        &mut run_outbox,
                    );
                    prof::stop(prof::Phase::Deliver, t);
                    ok
                }
                None => false,
            }
        };
        if !accepted {
            self.run_outbox = run_outbox;
            return None;
        }
        let t = prof::start();
        if let Some(rec) = &mut self.recorded {
            // One recorded pick per pulse: schedules stay byte-exact across
            // batch-on and batch-off engines.
            rec.extend((0..count).map(|_| ChannelId::from_index(channel)));
        }
        let direction = self.topology.direction(channel);
        let (_payload, seq, taken) = self
            .queues
            .pop_run(channel, count)
            .expect("fused run pops from a counter channel with a head run");
        debug_assert_eq!(taken, count, "batch quota never exceeds the head run");
        let at = self.clock.now();
        let pos = self.ready_pos[channel];
        debug_assert_ne!(pos, NOT_READY, "delivered channel is in the ready array");
        match self.queues.head_seq(channel) {
            Some(next_head) => {
                let view = &mut self.ready[pos];
                view.queue_len -= count as usize;
                view.head_seq = next_head;
                let view = *view;
                self.scheduler.on_head_change(view);
            }
            None => {
                self.ready.swap_remove(pos);
                self.ready_pos[channel] = NOT_READY;
                if let Some(moved) = self.ready.get(pos) {
                    self.ready_pos[moved.id.index()] = pos;
                }
                self.scheduler.on_unready(ChannelId::from_index(channel));
            }
        }
        self.stats.steps += count;
        if ignored {
            self.stats.delivered_to_terminated += count;
            if self.observing() {
                self.emit(EngineEvent::DeliverRun {
                    node,
                    port,
                    seq,
                    count,
                    direction,
                    at,
                    ignored: true,
                });
            }
        } else {
            self.stats.total_delivered += count;
            self.stats.recv_by_port[node][port] += count;
            if self.observing() {
                self.emit(EngineEvent::DeliverRun {
                    node,
                    port,
                    seq,
                    count,
                    direction,
                    at,
                    ignored: false,
                });
            }
            self.flush_run_outbox(node, &mut run_outbox);
            self.drain_timer_requests(node, handler);
            self.note_termination(node, handler);
        }
        self.run_outbox = run_outbox;
        prof::stop(prof::Phase::Batch, t);
        Some(EngineBatch {
            step: EngineStep {
                channel,
                node,
                port,
                seq,
                direction,
                ignored,
                at,
            },
            count,
        })
    }

    /// Flushes the run sends a fused dispatch buffered: bulk seq
    /// assignment, bulk stats, one [`EngineEvent::SendRun`] and one
    /// [`EventCore::enqueue_run`] per entry. Per-seq fault checks are
    /// skipped — the caller verified the plan's horizon is exhausted.
    fn flush_run_outbox(&mut self, node: usize, run_outbox: &mut Vec<(usize, M, u64)>) {
        for (port, msg, count) in run_outbox.drain(..) {
            if count == 0 {
                continue;
            }
            let channel = self.topology.out_channel(node, port);
            let seq = self.send_seq;
            self.send_seq += count;
            self.stats.total_sent += count;
            self.stats.sent_by_port[node][port] += count;
            let direction = self.topology.direction(channel);
            if let Some(d) = direction {
                self.stats.sent_by_direction[d.index()] += count;
            }
            if self.observing() {
                self.emit(EngineEvent::SendRun {
                    node,
                    port,
                    seq,
                    count,
                    direction,
                });
            }
            self.enqueue_run(channel, msg, seq, count);
        }
    }

    /// Enqueues `count` copies of `msg` with consecutive seqs in one
    /// operation — the bulk (untimed-only) form of [`EventCore::enqueue`].
    fn enqueue_run(&mut self, channel: usize, msg: M, seq: u64, count: u64) {
        let t = prof::start();
        debug_assert!(self.latency.is_none(), "bulk enqueues are untimed");
        self.queues.push_run(channel, msg, seq, count);
        let pos = self.ready_pos[channel];
        if pos == NOT_READY {
            self.ready_pos[channel] = self.ready.len();
            let view = ChannelView {
                id: ChannelId::from_index(channel),
                queue_len: count as usize,
                head_seq: seq,
                direction: self.topology.direction(channel),
                arrival: 0,
            };
            self.ready.push(view);
            self.scheduler.on_ready(view);
        } else {
            self.ready[pos].queue_len += count as usize;
            let view = self.ready[pos];
            self.scheduler.on_head_change(view);
        }
        if let Some(m) = &mut self.metrics {
            let peak = self.queues.peak_queue_bytes() as u64;
            if peak > m.peak_queue_bytes {
                m.peak_queue_bytes = peak;
            }
        }
        prof::stop(prof::Phase::Enqueue, t);
    }

    /// Injects `count` spurious copies of `msg` with consecutive seqs into
    /// a channel in one operation — the bulk form of [`EventCore::inject`],
    /// sized for 10⁹-pulse burst experiments. Counted in
    /// [`EventCore::fault_stats`] but not in `total_sent`.
    pub fn inject_run(&mut self, channel: usize, msg: M, count: u64) {
        if count == 0 {
            return;
        }
        let seq = self.send_seq;
        self.send_seq += count;
        self.fault_stats.injected += count;
        if self.observing() {
            for i in 0..count {
                self.emit(EngineEvent::Fault {
                    kind: FaultKind::Injected,
                    seq: seq + i,
                });
            }
        }
        if self.latency.is_some() {
            for i in 0..count {
                self.enqueue(channel, msg.clone(), seq + i);
            }
        } else {
            self.enqueue_run(channel, msg, seq, count);
        }
    }

    /// Runs until quiescence or budget exhaustion.
    ///
    /// With [`EventCore::set_batch`] enabled, steps through
    /// [`EventCore::try_step_batch`] with the remaining *pulse* budget as
    /// the per-transition cap, so the run stops at exactly the same pulse a
    /// per-pulse engine would.
    pub fn run<H: EventHandler<M>>(&mut self, handler: &mut H, budget: Budget) -> RunReport {
        if self.batch {
            return self.run_batched(handler, budget);
        }
        self.start(handler);
        let mut executed: u64 = 0;
        while executed < budget.max_steps {
            if self.step(handler).is_none() {
                break;
            }
            executed += 1;
        }
        self.report()
    }

    fn run_batched<H: EventHandler<M>>(&mut self, handler: &mut H, budget: Budget) -> RunReport {
        self.start(handler);
        let mut executed: u64 = 0;
        while executed < budget.max_steps {
            match self.step_batch(handler, budget.max_steps - executed) {
                Some(batch) => executed += batch.count,
                None => break,
            }
        }
        self.report()
    }

    /// Classifies the current state into a [`RunReport`] — the paper's
    /// quiescence/termination taxonomy.
    #[must_use]
    pub fn report(&self) -> RunReport {
        let in_flight = self.in_flight();
        let outcome = if in_flight > 0 {
            Outcome::BudgetExhausted
        } else if self.terminated.iter().all(|&t| t) {
            if self.stats.delivered_to_terminated == 0 {
                Outcome::QuiescentTerminated
            } else {
                Outcome::TerminatedNonQuiescent
            }
        } else {
            Outcome::Quiescent
        };
        RunReport {
            outcome,
            total_sent: self.stats.total_sent,
            steps: self.stats.steps,
            in_flight,
        }
    }

    /// Number of messages currently in transit.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.queues.total_len() as u64
    }

    /// Number of in-transit messages on channels tagged `direction`.
    #[must_use]
    pub fn in_flight_direction(&self, direction: Direction) -> u64 {
        (0..self.queues.channel_count())
            .filter(|&ch| self.topology.direction(ch) == Some(direction))
            .map(|ch| self.queues.len(ch) as u64)
            .sum()
    }

    /// Whether no messages are in transit.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.queues.is_empty()
    }

    /// Whether the given node has terminated.
    #[must_use]
    pub fn is_terminated(&self, node: usize) -> bool {
        self.terminated[node]
    }

    /// Aggregate counters.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }
}

impl<M: Message, T: Topology + fmt::Debug> fmt::Debug for EventCore<M, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventCore")
            .field("topology", &self.topology)
            .field("backend", &self.queues.backend())
            .field("in_flight", &self.in_flight())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_metrics_track_in_flight_extremes() {
        let mut m = RunMetrics::new();
        m.on_event(&EngineEvent::Send {
            node: 0,
            port: 1,
            seq: 0,
            direction: None,
        });
        m.on_event(&EngineEvent::Send {
            node: 1,
            port: 0,
            seq: 1,
            direction: None,
        });
        m.on_event(&EngineEvent::Deliver {
            node: 1,
            port: 0,
            seq: 0,
            direction: None,
            at: 0,
        });
        m.on_event(&EngineEvent::Terminate { node: 1 });
        m.on_event(&EngineEvent::DeliverIgnored {
            node: 1,
            port: 0,
            seq: 1,
        });
        assert_eq!(m.sends, 2);
        assert_eq!(m.pulses_delivered, 1);
        assert_eq!(m.transitions, 2);
        assert_eq!(m.ignored, 1);
        assert_eq!(m.terminations, 1);
        assert_eq!(m.max_in_flight, 2);
    }

    #[test]
    fn run_metrics_aggregate_run_events_in_o1() {
        let mut m = RunMetrics::new();
        m.on_event(&EngineEvent::SendRun {
            node: 0,
            port: 1,
            seq: 0,
            count: 5,
            direction: None,
        });
        m.on_event(&EngineEvent::DeliverRun {
            node: 1,
            port: 0,
            seq: 0,
            count: 3,
            direction: None,
            at: 0,
            ignored: false,
        });
        m.on_event(&EngineEvent::DeliverRun {
            node: 1,
            port: 0,
            seq: 3,
            count: 2,
            direction: None,
            at: 0,
            ignored: true,
        });
        assert_eq!(m.sends, 5);
        assert_eq!(m.pulses_delivered, 3);
        assert_eq!(m.ignored, 2);
        assert_eq!(m.transitions, 2);
        assert_eq!(m.max_in_flight, 5);
    }

    #[test]
    fn trace_expands_run_events_per_pulse() {
        let mut t = Trace::new();
        t.on_event(&EngineEvent::DeliverRun {
            node: 2,
            port: 0,
            seq: 10,
            count: 3,
            direction: Some(Direction::Cw),
            at: 0,
            ignored: false,
        });
        t.on_event(&EngineEvent::SendRun {
            node: 2,
            port: 1,
            seq: 13,
            count: 2,
            direction: Some(Direction::Cw),
        });
        assert_eq!(t.len(), 5);
        assert_eq!(
            t.events()[0],
            TraceEvent::Deliver {
                node: 2,
                port: 0,
                seq: 10,
                direction: Some(Direction::Cw),
                at: 0
            }
        );
        assert_eq!(
            t.events()[2],
            TraceEvent::Deliver {
                node: 2,
                port: 0,
                seq: 12,
                direction: Some(Direction::Cw),
                at: 0
            }
        );
        assert_eq!(
            t.events()[4],
            TraceEvent::Send {
                node: 2,
                port: 1,
                seq: 14,
                direction: Some(Direction::Cw)
            }
        );
    }

    #[test]
    fn capped_trace_expands_runs_in_o_cap() {
        let mut t = Trace::with_capacity(3);
        t.on_event(&EngineEvent::DeliverRun {
            node: 0,
            port: 0,
            seq: 0,
            count: 1 << 40, // would never finish if expansion were O(count)
            direction: None,
            at: 0,
            ignored: true,
        });
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), (1u64 << 40) - 3);
    }

    #[test]
    fn observer_composition_fans_out() {
        let mut pair = (RunMetrics::new(), Some(RunMetrics::new()));
        let ev = EngineEvent::Send {
            node: 0,
            port: 0,
            seq: 0,
            direction: None,
        };
        pair.on_event(&ev);
        let mut by_ref = &mut pair;
        Observer::on_event(&mut by_ref, &ev);
        ().on_event(&ev);
        assert_eq!(pair.0.sends, 2);
        assert_eq!(pair.1.expect("present").sends, 2);
    }

    #[test]
    fn trace_observer_records_engine_events() {
        let mut t = Trace::new();
        t.on_event(&EngineEvent::Start { node: 3 });
        t.on_event(&EngineEvent::Fault {
            kind: FaultKind::Dropped,
            seq: 7,
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0], TraceEvent::Start { node: 3 });
        assert_eq!(
            t.events()[1],
            TraceEvent::Fault {
                kind: FaultKind::Dropped,
                seq: 7
            }
        );
    }

    #[test]
    fn queue_backend_parses_and_displays() {
        for backend in QueueBackend::ALL {
            assert_eq!(QueueBackend::parse(&backend.to_string()), Some(backend));
        }
        assert_eq!(QueueBackend::parse("VEC"), Some(QueueBackend::Vec));
        assert_eq!(QueueBackend::parse("ring-buffer"), None);
        assert_eq!(QueueBackend::default(), QueueBackend::Vec);
    }

    #[test]
    fn engine_error_displays_the_offense() {
        let e = EngineError::SchedulerOutOfRange {
            pick: 9,
            ready_len: 2,
        };
        let text = e.to_string();
        assert!(text.contains('9') && text.contains('2'), "{text}");
    }

    #[test]
    fn pulse_runs_merge_consecutive_seqs() {
        let mut runs = PulseRuns::default();
        // A burst of consecutive seqs collapses into one run.
        assert!(runs.push(10)); // new run
        assert!(!runs.push(11));
        assert!(!runs.push(12));
        // A gap spills into a second run.
        assert!(runs.push(20));
        assert_eq!(runs.len, 4);
        assert_eq!(runs.runs.len(), 2);
        assert_eq!(runs.head_seq(), Some(10));
        // FIFO pop order with exact seqs preserved.
        assert_eq!(runs.pop(), Some((10, false)));
        assert_eq!(runs.pop(), Some((11, false)));
        assert_eq!(runs.pop(), Some((12, true)));
        assert_eq!(runs.head_seq(), Some(20));
        assert_eq!(runs.pop(), Some((20, true)));
        assert_eq!(runs.pop(), None);
    }

    #[test]
    fn pulse_runs_bulk_ops_match_per_pulse() {
        let mut runs = PulseRuns::default();
        assert!(runs.push_run(10, 4)); // one new run [10, 14)
        assert!(!runs.push_run(14, 3)); // merges: [10, 17)
        assert_eq!(runs.head_run_len(), 7);
        assert!(runs.push_run(20, 2)); // gap: second run
        assert_eq!(runs.len, 9);
        // Partial pop leaves the run's tail in place.
        assert_eq!(runs.pop_run(3), Some((10, 3, false)));
        assert_eq!(runs.head_seq(), Some(13));
        assert_eq!(runs.head_run_len(), 4);
        // Over-asking is clamped to the head run, never crossing the gap.
        assert_eq!(runs.pop_run(100), Some((13, 4, true)));
        assert_eq!(runs.head_seq(), Some(20));
        assert_eq!(runs.pop_run(2), Some((20, 2, true)));
        assert_eq!(runs.pop_run(1), None);
        assert_eq!(runs.len, 0);
    }

    #[test]
    fn store_run_primitives_are_backend_aware() {
        use crate::message::Pulse;
        let mut counter: QueueStore<Pulse> = QueueStore::counter(2);
        counter.push_run(0, Pulse, 0, 5);
        counter.push(1, Pulse, 5);
        counter.push(0, Pulse, 6); // gap on ch0: head run stays 5
        assert_eq!(counter.head_run_len(0), 5);
        assert_eq!(counter.run_payload(0), Some(Pulse));
        assert_eq!(counter.pop_run(0, 3), Some((Pulse, 0, 3)));
        assert_eq!(counter.total_len(), 4);
        assert_eq!(counter.head_seq(0), Some(3));

        // The vec backend probes head runs (so loop-mode batching still
        // amortizes picks) but refuses bulk pops: payloads may differ.
        let mut vec: QueueStore<u64> = QueueStore::vec(1);
        vec.push(0, 7, 0);
        vec.push(0, 8, 1);
        vec.push(0, 9, 3); // seq gap
        assert_eq!(vec.head_run_len(0), 2);
        assert_eq!(vec.pop_run(0, 2), None);
        assert_eq!(vec.run_payload(0), None);
    }

    #[test]
    fn counter_store_is_fifo_with_byte_accounting() {
        use crate::message::Pulse;
        let mut store: QueueStore<Pulse> = QueueStore::counter(2);
        assert_eq!(store.backend(), QueueBackend::Counter);
        // Interleave two channels: ch0 gets seqs 0,1,3 (gap), ch1 gets 2.
        store.push(0, Pulse, 0);
        store.push(0, Pulse, 1);
        store.push(1, Pulse, 2);
        store.push(0, Pulse, 3);
        assert_eq!(store.len(0), 3);
        assert_eq!(store.len(1), 1);
        assert_eq!(store.total_len(), 4);
        // ch0 holds runs [(0,2),(3,1)], ch1 holds [(2,1)]: three runs.
        assert_eq!(store.queue_bytes(), 3 * RUN_BYTES);
        assert_eq!(store.head_seq(0), Some(0));
        assert_eq!(store.pop(0), Some((Pulse, 0)));
        assert_eq!(store.pop(0), Some((Pulse, 1)));
        assert_eq!(store.pop(0), Some((Pulse, 3)));
        assert_eq!(store.pop(0), None);
        assert_eq!(store.queue_bytes(), RUN_BYTES);
        assert_eq!(store.peak_queue_bytes(), 3 * RUN_BYTES);
        assert_eq!(store.pop(1), Some((Pulse, 2)));
        assert!(store.is_empty());
    }

    #[test]
    fn vec_store_counts_envelope_bytes() {
        let mut store: QueueStore<u64> = QueueStore::vec(1);
        assert_eq!(store.backend(), QueueBackend::Vec);
        store.push(0, 99, 0);
        store.push(0, 100, 1);
        let per_msg = std::mem::size_of::<Envelope<u64>>();
        assert_eq!(store.queue_bytes(), 2 * per_msg);
        assert_eq!(store.pop(0), Some((99, 0)));
        assert_eq!(store.queue_bytes(), per_msg);
        assert_eq!(store.peak_queue_bytes(), 2 * per_msg);
    }
}
