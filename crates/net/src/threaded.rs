//! Threaded runtime: the same protocols on real OS threads.
//!
//! Each node runs on its own thread; each directed channel is an `mpsc`
//! FIFO channel. Delays come from genuine OS scheduling nondeterminism
//! (optionally amplified by random jitter), demonstrating that the
//! algorithms' guarantees are not artifacts of the discrete-event simulator.
//!
//! Quiescence of a *stabilizing* algorithm cannot be detected from inside
//! the asynchronous system (that is exactly the paper's point about
//! non-termination); the harness detects it from the outside with a global
//! sent/delivered counter pair — a privileged observer position that the
//! nodes themselves do not have.

use crate::message::Message;
use crate::port::Port;
use crate::sim::{Context, Protocol};
use crate::snapshot::Schedule;
use crate::topology::{ChannelId, NodeIndex, Wiring};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Options for a threaded run.
#[derive(Clone, Debug)]
pub struct ThreadedOptions {
    /// Hard wall-clock limit for the whole run.
    pub timeout: Duration,
    /// Number of consecutive idle polls required to declare quiescence.
    pub quiescence_polls: u32,
    /// Interval between watchdog polls.
    pub poll_interval: Duration,
    /// If nonzero, each node sleeps up to this many microseconds (seeded by
    /// node index) before processing each message, perturbing schedules.
    pub max_jitter_us: u64,
    /// Record the global delivery order as a [`Schedule`] (in
    /// `ThreadedReport::schedule`), replayable on the discrete-event
    /// [`Simulation`](crate::Simulation) — the cross-engine
    /// divergence-replay tool. Adds one mutex acquisition per delivery.
    pub record: bool,
}

impl Default for ThreadedOptions {
    fn default() -> ThreadedOptions {
        ThreadedOptions {
            timeout: Duration::from_secs(30),
            quiescence_polls: 3,
            poll_interval: Duration::from_millis(2),
            max_jitter_us: 0,
            record: false,
        }
    }
}

/// How a threaded run ended.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ThreadedOutcome {
    /// Every node terminated on its own.
    AllTerminated,
    /// The network went quiescent (sent == delivered, all threads idle).
    Quiescent,
    /// The wall-clock timeout fired first.
    TimedOut,
}

/// Result of [`run_threaded`].
#[derive(Clone, Debug)]
pub struct ThreadedReport<P> {
    /// How the run ended.
    pub outcome: ThreadedOutcome,
    /// Total messages sent across all nodes.
    pub total_sent: u64,
    /// Total messages delivered (processed) across all nodes.
    pub total_delivered: u64,
    /// The final protocol instances, in node order.
    pub nodes: Vec<P>,
    /// The global delivery order, when [`ThreadedOptions::record`] was set.
    ///
    /// Each entry is the channel whose head message a node dequeued,
    /// logged at dequeue time — before the node processes the message and
    /// sends its replies — so the recorded order respects causality: the
    /// delivery that *produced* a message is always logged before the
    /// delivery *of* that message. Replaying the schedule on a fresh
    /// [`Simulation`](crate::Simulation) of the same configuration
    /// therefore always finds the picked channel non-empty and reproduces
    /// the threaded execution's per-node delivery counts exactly.
    pub schedule: Option<Schedule>,
}

struct NodeHarness<M> {
    rx: [Receiver<M>; 2],
    tx: [Sender<M>; 2],
    /// `in_channel[q]` = the network channel delivering into port `q`.
    in_channel: [ChannelId; 2],
}

/// Runs one protocol instance per node on dedicated OS threads.
///
/// Returns when every node terminates, the network is detected quiescent, or
/// the timeout fires. Terminated nodes stop consuming messages (matching the
/// paper's semantics: a terminated node ignores incoming pulses).
///
/// # Panics
///
/// Panics if `nodes.len()` differs from the wiring's node count or if a node
/// thread panics.
pub fn run_threaded<M, P>(
    wiring: &Wiring,
    nodes: Vec<P>,
    opts: &ThreadedOptions,
) -> ThreadedReport<P>
where
    M: Message,
    P: Protocol<M> + Send + 'static,
{
    assert_eq!(nodes.len(), wiring.len(), "one protocol per node");
    let n = wiring.len();

    // One mpsc channel per directed network channel. senders[c] feeds
    // the queue of channel c; the receiver lives at the channel's endpoint.
    let mut senders: Vec<Sender<M>> = Vec::with_capacity(2 * n);
    let mut receivers: Vec<Option<Receiver<M>>> = Vec::with_capacity(2 * n);
    for _ in 0..2 * n {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(Some(rx));
    }

    // rx_at[(v, q)] = receiver of the channel whose endpoint is (v, q):
    // the channel leaving (u, p) where endpoint(u, p) == (v, q). Because the
    // endpoint map is an involution, that channel is exactly the one leaving
    // (v, q)'s link partner, i.e. endpoint(v, q) read backwards.
    let mut harnesses: Vec<NodeHarness<M>> = Vec::with_capacity(n);
    for v in 0..n {
        let in_channel = [Port::Zero, Port::One].map(|q| {
            let (u, p) = wiring.endpoint(ChannelId::new(v, q));
            ChannelId::new(u, p)
        });
        let rx = in_channel.map(|ch| {
            receivers[ch.index()]
                .take()
                .expect("each channel has exactly one consumer")
        });
        let tx = [Port::Zero, Port::One].map(|p| senders[ChannelId::new(v, p).index()].clone());
        harnesses.push(NodeHarness { rx, tx, in_channel });
    }

    let sent = Arc::new(AtomicU64::new(0));
    let delivered = Arc::new(AtomicU64::new(0));
    let busy = Arc::new(AtomicUsize::new(0));
    let terminated_count = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let picks: Option<Arc<Mutex<Vec<ChannelId>>>> = opts
        .record
        .then(|| Arc::new(Mutex::new(Vec::with_capacity(1024))));

    let mut handles = Vec::with_capacity(n);
    for (v, (mut proto, harness)) in nodes.into_iter().zip(harnesses).enumerate() {
        let sent = Arc::clone(&sent);
        let delivered = Arc::clone(&delivered);
        let busy = Arc::clone(&busy);
        let terminated_count = Arc::clone(&terminated_count);
        let stop = Arc::clone(&stop);
        let picks = picks.clone();
        let max_jitter_us = opts.max_jitter_us;
        let handle = std::thread::Builder::new()
            .name(format!("co-node-{v}"))
            .spawn(move || {
                let mut outbox: Vec<(usize, M)> = Vec::new();
                busy.fetch_add(1, Ordering::SeqCst);
                {
                    let mut ctx = Context::for_threaded(v, &mut outbox);
                    proto.on_start(&mut ctx);
                }
                for (port, msg) in outbox.drain(..) {
                    sent.fetch_add(1, Ordering::SeqCst);
                    let _ = harness.tx[port].send(msg);
                }
                busy.fetch_sub(1, Ordering::SeqCst);

                let mut jitter_state: u64 = 0x9E37_79B9_7F4A_7C15 ^ (v as u64);
                let mut terminated = proto.is_terminated();
                if terminated {
                    terminated_count.fetch_add(1, Ordering::SeqCst);
                }
                // Which port to poll first; alternated so neither receiver
                // starves the other under sustained traffic.
                let mut first = 0usize;
                while !stop.load(Ordering::SeqCst) && !terminated {
                    let mut received = None;
                    for k in 0..2 {
                        let q = (first + k) % 2;
                        match harness.rx[q].try_recv() {
                            Ok(m) => {
                                received = Some((Port::from_index(q), m));
                                break;
                            }
                            Err(TryRecvError::Empty | TryRecvError::Disconnected) => {}
                        }
                    }
                    first ^= 1;
                    let Some((port, msg)) = received else {
                        std::thread::sleep(Duration::from_micros(500));
                        continue;
                    };
                    // Log the pick at dequeue time, before processing:
                    // replies to this message can only be logged later, so
                    // the recorded order respects causality.
                    if let Some(log) = &picks {
                        log.lock()
                            .expect("pick log lock")
                            .push(harness.in_channel[port.index()]);
                    }
                    busy.fetch_add(1, Ordering::SeqCst);
                    if max_jitter_us > 0 {
                        // xorshift jitter: cheap, deterministic per node.
                        jitter_state ^= jitter_state << 13;
                        jitter_state ^= jitter_state >> 7;
                        jitter_state ^= jitter_state << 17;
                        let us = jitter_state % max_jitter_us;
                        if us > 0 {
                            std::thread::sleep(Duration::from_micros(us));
                        }
                    }
                    {
                        let mut ctx = Context::for_threaded(v, &mut outbox);
                        proto.on_message(port, msg, &mut ctx);
                    }
                    for (out_port, out_msg) in outbox.drain(..) {
                        sent.fetch_add(1, Ordering::SeqCst);
                        let _ = harness.tx[out_port].send(out_msg);
                    }
                    delivered.fetch_add(1, Ordering::SeqCst);
                    busy.fetch_sub(1, Ordering::SeqCst);
                    if proto.is_terminated() {
                        terminated = true;
                        terminated_count.fetch_add(1, Ordering::SeqCst);
                    }
                }
                proto
            })
            .expect("spawn node thread");
        handles.push(handle);
    }

    // Watchdog: declare quiescence when sent == delivered and no thread is
    // processing, stable across several polls.
    let deadline = Instant::now() + opts.timeout;
    let mut stable_polls = 0;
    let outcome = loop {
        if terminated_count.load(Ordering::SeqCst) == n {
            break ThreadedOutcome::AllTerminated;
        }
        if Instant::now() >= deadline {
            break ThreadedOutcome::TimedOut;
        }
        let s = sent.load(Ordering::SeqCst);
        let d = delivered.load(Ordering::SeqCst);
        let b = busy.load(Ordering::SeqCst);
        if s == d && b == 0 {
            stable_polls += 1;
            if stable_polls >= opts.quiescence_polls {
                break ThreadedOutcome::Quiescent;
            }
        } else {
            stable_polls = 0;
        }
        std::thread::sleep(opts.poll_interval);
    };

    stop.store(true, Ordering::SeqCst);
    let nodes: Vec<P> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect();

    let schedule = picks.map(|log| {
        let picks = std::mem::take(&mut *log.lock().expect("pick log lock"));
        Schedule::from_picks(picks)
    });

    ThreadedReport {
        outcome,
        total_sent: sent.load(Ordering::SeqCst),
        total_delivered: delivered.load(Ordering::SeqCst),
        nodes,
        schedule,
    }
}

impl<'a, M: Message> Context<'a, M> {
    /// Internal constructor used by the threaded runtime.
    pub(crate) fn for_threaded(node: NodeIndex, outbox: &'a mut Vec<(usize, M)>) -> Context<'a, M> {
        Context::new_internal(node, outbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Pulse;
    use crate::topology::RingSpec;

    /// Relays each pulse once around the ring `laps` times, then terminates.
    #[derive(Debug)]
    struct LapCounter {
        laps: u64,
        seen: u64,
        done: bool,
    }

    impl Protocol<Pulse> for LapCounter {
        type Output = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
            ctx.send(Port::One, Pulse);
        }
        fn on_message(&mut self, _port: Port, _msg: Pulse, ctx: &mut Context<'_, Pulse>) {
            self.seen += 1;
            if self.seen < self.laps {
                ctx.send(Port::One, Pulse);
            } else {
                self.done = true;
            }
        }
        fn is_terminated(&self) -> bool {
            self.done
        }
        fn output(&self) -> Option<u64> {
            Some(self.seen)
        }
    }

    #[test]
    fn threaded_ring_terminates() {
        let spec = RingSpec::oriented(vec![1, 2, 3, 4]);
        let nodes = (0..4)
            .map(|_| LapCounter {
                laps: 6,
                seen: 0,
                done: false,
            })
            .collect();
        let report = run_threaded(&spec.wiring(), nodes, &ThreadedOptions::default());
        assert_eq!(report.outcome, ThreadedOutcome::AllTerminated);
        for node in &report.nodes {
            assert_eq!(node.seen, 6);
        }
        assert_eq!(report.total_sent, 4 + 4 * 5);
    }

    /// A pure relay network with no initial sends goes quiescent immediately.
    #[derive(Debug)]
    struct Silent;

    impl Protocol<Pulse> for Silent {
        type Output = ();
        fn on_start(&mut self, _ctx: &mut Context<'_, Pulse>) {}
        fn on_message(&mut self, _p: Port, _m: Pulse, _ctx: &mut Context<'_, Pulse>) {}
        fn output(&self) -> Option<()> {
            None
        }
    }

    #[test]
    fn threaded_detects_quiescence() {
        let spec = RingSpec::oriented(vec![1, 2, 3]);
        let nodes = vec![Silent, Silent, Silent];
        let report = run_threaded(&spec.wiring(), nodes, &ThreadedOptions::default());
        assert_eq!(report.outcome, ThreadedOutcome::Quiescent);
        assert_eq!(report.total_sent, 0);
    }

    #[test]
    fn threaded_recording_replays_on_the_simulator() {
        use crate::sim::{Budget, Simulation};
        let spec = RingSpec::oriented(vec![1, 2, 3, 4, 5]);
        let nodes = (0..5)
            .map(|_| LapCounter {
                laps: 4,
                seen: 0,
                done: false,
            })
            .collect();
        let opts = ThreadedOptions {
            record: true,
            max_jitter_us: 50,
            ..ThreadedOptions::default()
        };
        let report = run_threaded(&spec.wiring(), nodes, &opts);
        assert_eq!(report.outcome, ThreadedOutcome::AllTerminated);
        let schedule = report.schedule.as_ref().expect("recording was enabled");
        assert_eq!(schedule.len() as u64, report.total_delivered);

        // The recorded schedule, replayed on the discrete-event simulator,
        // reproduces the threaded run: same sends, same per-node receipts.
        let nodes = (0..5)
            .map(|_| LapCounter {
                laps: 4,
                seen: 0,
                done: false,
            })
            .collect();
        let mut sim: Simulation<Pulse, LapCounter> = Simulation::new(
            spec.wiring(),
            nodes,
            crate::sched::SchedulerKind::Fifo.build(0),
        );
        let sim_report = sim.replay(schedule, Budget::steps(schedule.len() as u64));
        assert_eq!(sim_report.total_sent, report.total_sent);
        assert_eq!(sim_report.steps, report.total_delivered);
        for (v, node) in report.nodes.iter().enumerate() {
            assert_eq!(sim.node(v).seen, node.seen, "node {v} diverged");
        }
    }

    #[test]
    fn unrecorded_runs_have_no_schedule() {
        let spec = RingSpec::oriented(vec![1, 2, 3]);
        let nodes = vec![Silent, Silent, Silent];
        let report = run_threaded(&spec.wiring(), nodes, &ThreadedOptions::default());
        assert!(report.schedule.is_none());
    }

    #[test]
    fn threaded_self_loop() {
        let spec = RingSpec::oriented(vec![9]);
        let nodes = vec![LapCounter {
            laps: 10,
            seen: 0,
            done: false,
        }];
        let report = run_threaded(&spec.wiring(), nodes, &ThreadedOptions::default());
        assert_eq!(report.outcome, ThreadedOutcome::AllTerminated);
        assert_eq!(report.nodes[0].seen, 10);
    }
}
