//! Visited-state deduplication backends for exhaustive exploration.
//!
//! The explorer stores one 64-bit fingerprint per visited configuration.
//! Sequentially that is a plain `HashSet<u64>`; the parallel explorer
//! ([`crate::explore::explore_parallel`]) instead funnels every insert
//! through a [`ShardedIndex`] — [`FP_SHARDS`] independently locked shards
//! keyed by a fingerprint prefix, so concurrent workers rarely contend on
//! the same lock — with a pluggable [`FingerprintStore`] backend per shard:
//!
//! * [`ExactStore`] — a `HashSet<u64>`, 8 bytes of accounted storage per
//!   admitted configuration, zero false positives. This is the oracle
//!   backend: state counts are exact and deterministic.
//! * [`BloomStore`] — a classic Bloom filter (double hashing, k probes in
//!   one bit array). Memory is *fixed up front* regardless of how many
//!   configurations are admitted, at the price of a measurable
//!   false-positive rate: a colliding configuration is silently treated as
//!   visited and its subtree pruned. The filter is sized from a capacity
//!   and a target false-positive budget, and [`BloomStore::saturation`]
//!   reports the *measured* fraction of set bits so the explorer can tell
//!   how much of the budget a run actually consumed.
//! * [`MmapStore`] — a file-backed open-addressing table (8-byte slots,
//!   linear probing, grow-by-rehash into a doubled file) that keeps the
//!   exact backend's zero-false-positive contract while moving the storage
//!   *out of RAM*: the table lives in a sparse file the OS page cache maps
//!   in and out on demand, so the resident footprint is working-set-sized
//!   rather than state-space-sized. This is the out-of-core backend that
//!   makes state spaces larger than RAM exhaustible.
//!
//! The mmap backend is implemented with positioned reads/writes
//! ([`std::os::unix::fs::FileExt`]) rather than a raw `mmap(2)` mapping:
//! the workspace forbids `unsafe` and carries no FFI dependency, and an
//! 8-byte `pread`/`pwrite` against a page-cached file has the same
//! out-of-core behaviour (the kernel caches hot pages, evicts cold ones)
//! without any unsafe aliasing. Set-equivalence with [`ExactStore`] is
//! asserted by property tests driving both stores with identical insert
//! sequences across grow-by-rehash boundaries.
//!
//! Soundness note: a Bloom false positive can only *under*-count states
//! (prune a subtree that re-merges with the visited space elsewhere); it
//! never fabricates a state. Violations found under a Bloom backend are
//! therefore always real; violations *missed* are possible in principle,
//! which is why the differential tests drive both backends over the same
//! instances (see `tests/explore_parallel.rs`). The exact and mmap backends
//! have no false positives at all.

use crate::snapshot::{put_u64, ByteReader};
use std::collections::HashSet;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards in a [`ShardedIndex`].
///
/// Sixty-four shards keep lock contention negligible for any worker count
/// the explorer will realistically run (`jobs` ≤ cores), while the per-shard
/// constant overhead stays trivial.
pub const FP_SHARDS: usize = 64;
const SHARD_BITS: u32 = FP_SHARDS.trailing_zeros();

/// Default initial byte budget for the mmap backend: the total size of the
/// initial table files across all shards. Small on purpose — the table
/// grows by rehash, so the budget only sets where growing starts.
pub const MMAP_DEFAULT_BUDGET: usize = 1 << 20;

/// Which deduplication backend a [`ShardedIndex`] uses.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum DedupKind {
    /// Exact `HashSet<u64>` shards: 8 B per admitted configuration, no
    /// false positives.
    #[default]
    Exact,
    /// Bloom-filter shards: fixed memory, tunable false-positive budget.
    Bloom,
    /// File-backed open-addressing shards ([`MmapStore`]): exact answers,
    /// out-of-core storage. `budget` is the initial total file size in
    /// bytes across all shards (tables grow by rehash past it).
    Mmap {
        /// Initial total table-file bytes across all shards.
        budget: usize,
    },
}

impl DedupKind {
    /// All backends, in order (mmap with its default budget).
    pub const ALL: [DedupKind; 3] = [
        DedupKind::Exact,
        DedupKind::Bloom,
        DedupKind::Mmap {
            budget: MMAP_DEFAULT_BUDGET,
        },
    ];

    /// The spellings `FromStr` accepts, for use in error messages and CLI
    /// usage text. Kept in sync with [`DedupKind::ALL`] by a test.
    pub const NAMES: [&'static str; 3] = ["exact", "bloom", "mmap[:BUDGET]"];

    /// Parses `"exact"` / `"bloom"` / `"mmap"` / `"mmap:BUDGET"`; see
    /// [`FromStr`] for the budget syntax.
    #[must_use]
    pub fn parse(s: &str) -> Option<DedupKind> {
        s.parse().ok()
    }
}

impl fmt::Display for DedupKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DedupKind::Exact => f.write_str("exact"),
            DedupKind::Bloom => f.write_str("bloom"),
            DedupKind::Mmap { budget } if *budget == MMAP_DEFAULT_BUDGET => f.write_str("mmap"),
            DedupKind::Mmap { budget } => write!(f, "mmap:{budget}"),
        }
    }
}

/// Error parsing a [`DedupKind`]; lists the valid spellings, matching the
/// registry's "one of: …" error style.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDedupError(String);

impl fmt::Display for ParseDedupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown dedup backend '{}'; one of: {}",
            self.0,
            DedupKind::NAMES.join(", ")
        )
    }
}

impl std::error::Error for ParseDedupError {}

impl FromStr for DedupKind {
    type Err = ParseDedupError;

    /// `exact`, `bloom`, `mmap`, or `mmap:BUDGET` where BUDGET is a byte
    /// count with an optional `k`/`m`/`g` (×1024) suffix, e.g. `mmap:64m`.
    fn from_str(s: &str) -> Result<DedupKind, ParseDedupError> {
        match s {
            "exact" => return Ok(DedupKind::Exact),
            "bloom" => return Ok(DedupKind::Bloom),
            "mmap" => {
                return Ok(DedupKind::Mmap {
                    budget: MMAP_DEFAULT_BUDGET,
                })
            }
            _ => {}
        }
        if let Some(spec) = s.strip_prefix("mmap:") {
            let (digits, scale) = match spec.strip_suffix(['k', 'K']) {
                Some(d) => (d, 1usize << 10),
                None => match spec.strip_suffix(['m', 'M']) {
                    Some(d) => (d, 1 << 20),
                    None => match spec.strip_suffix(['g', 'G']) {
                        Some(d) => (d, 1 << 30),
                        None => (spec, 1),
                    },
                },
            };
            if let Ok(n) = digits.parse::<usize>() {
                if let Some(budget) = n.checked_mul(scale).filter(|&b| b > 0) {
                    return Ok(DedupKind::Mmap { budget });
                }
            }
        }
        Err(ParseDedupError(s.to_string()))
    }
}

/// Byte accounting for a fingerprint store, split by storage class.
///
/// The exact and Bloom backends are pure heap; the mmap backend is pure
/// file. Exploration byte *limits* apply to the total, but E22 and the
/// bench gate need the split: the whole point of the out-of-core backend is
/// that its `heap` stays ~0 while `file` carries the state space.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DedupBytes {
    /// Bytes resident on the heap.
    pub heap: usize,
    /// Bytes backed by files on disk.
    pub file: usize,
}

impl DedupBytes {
    /// Heap + file bytes.
    #[must_use]
    pub fn total(&self) -> usize {
        self.heap + self.file
    }
}

/// One shard's worth of fingerprint storage.
///
/// `insert` is the only mutation: it returns `true` iff the fingerprint was
/// **not** already present (i.e. the caller just admitted a new
/// configuration). Probabilistic backends may return `false` for a
/// never-seen fingerprint (a false positive) but must never return `true`
/// for a fingerprint previously inserted into the same store.
pub trait FingerprintStore: Send {
    /// Inserts `fp`, returning whether it was new to this store.
    fn insert(&mut self, fp: u64) -> bool;
    /// Bytes of storage this store accounts for, split heap/file.
    fn bytes(&self) -> DedupBytes;
    /// Appends a serialized image of the store's contents (checkpointing).
    fn save(&self, out: &mut Vec<u8>);
    /// Restores contents previously written by [`FingerprintStore::save`]
    /// into this (empty, identically configured) store.
    fn load(&mut self, bytes: &[u8]) -> Result<(), String>;
}

/// Exact per-shard backend: a `HashSet<u64>`.
#[derive(Debug, Default)]
pub struct ExactStore(HashSet<u64>);

impl ExactStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> ExactStore {
        ExactStore::default()
    }
}

impl FingerprintStore for ExactStore {
    fn insert(&mut self, fp: u64) -> bool {
        self.0.insert(fp)
    }

    fn bytes(&self) -> DedupBytes {
        // Accounted cost: the 8-byte payload per entry, matching the
        // sequential explorer's `BYTES_PER_CONFIG` accounting (hash-table
        // overhead is an implementation detail both explorers share).
        DedupBytes {
            heap: self.0.len() * std::mem::size_of::<u64>(),
            file: 0,
        }
    }

    fn save(&self, out: &mut Vec<u8>) {
        put_u64(out, self.0.len() as u64);
        for &fp in &self.0 {
            put_u64(out, fp);
        }
    }

    fn load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = ByteReader::new(bytes);
        let count = r.len()?;
        self.0.reserve(count);
        for _ in 0..count {
            self.0.insert(r.u64()?);
        }
        r.finish()
    }
}

/// Bloom-filter per-shard backend: `k` probes into one bit array.
#[derive(Debug)]
pub struct BloomStore {
    bits: Vec<u64>,
    /// Number of usable bits (a multiple of 64).
    m: u64,
    /// Probes per fingerprint.
    k: u32,
    /// Bits currently set (for measured saturation / FP estimates).
    ones: u64,
}

impl BloomStore {
    /// Sizes a filter for `capacity` fingerprints at a target false-positive
    /// probability `fp_budget` (clamped to a sane range).
    ///
    /// Standard sizing: `m = ⌈-n·ln p / (ln 2)²⌉` bits and `k = ⌈(m/n)·ln 2⌉`
    /// probes.
    #[must_use]
    pub fn for_capacity(capacity: usize, fp_budget: f64) -> BloomStore {
        let n = capacity.max(1) as f64;
        let p = fp_budget.clamp(1e-9, 0.5);
        let ln2 = std::f64::consts::LN_2;
        let m = ((-n * p.ln()) / (ln2 * ln2)).ceil().max(64.0) as u64;
        let m = m.div_ceil(64) * 64;
        let k = ((m as f64 / n) * ln2).ceil().clamp(1.0, 16.0) as u32;
        BloomStore {
            bits: vec![0u64; (m / 64) as usize],
            m,
            k,
            ones: 0,
        }
    }

    /// Fraction of bits currently set — the measured load of the filter.
    ///
    /// The false-positive probability of a lookup is `saturation^k`, so a
    /// run can verify after the fact that it stayed inside its budget.
    #[must_use]
    pub fn saturation(&self) -> f64 {
        self.ones as f64 / self.m as f64
    }

    /// The measured false-positive probability estimate `saturation^k`.
    #[must_use]
    pub fn fp_estimate(&self) -> f64 {
        self.saturation().powi(self.k as i32)
    }

    fn bit_index(&self, fp: u64, probe: u32) -> u64 {
        // Double hashing: two independent halves derived from the (already
        // splitmix-diffused) fingerprint; h2 is forced odd so every probe
        // sequence walks the whole array.
        let h1 = fp;
        let h2 = splitmix64(fp ^ 0x9E37_79B9_7F4A_7C15) | 1;
        h1.wrapping_add(u64::from(probe).wrapping_mul(h2)) % self.m
    }
}

impl FingerprintStore for BloomStore {
    fn insert(&mut self, fp: u64) -> bool {
        let mut new = false;
        for probe in 0..self.k {
            let bit = self.bit_index(fp, probe);
            let (word, mask) = ((bit / 64) as usize, 1u64 << (bit % 64));
            if self.bits[word] & mask == 0 {
                self.bits[word] |= mask;
                self.ones += 1;
                new = true;
            }
        }
        new
    }

    fn bytes(&self) -> DedupBytes {
        DedupBytes {
            heap: self.bits.len() * std::mem::size_of::<u64>(),
            file: 0,
        }
    }

    fn save(&self, out: &mut Vec<u8>) {
        put_u64(out, self.m);
        put_u64(out, u64::from(self.k));
        put_u64(out, self.ones);
        for &word in &self.bits {
            put_u64(out, word);
        }
    }

    fn load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = ByteReader::new(bytes);
        let (m, k, ones) = (r.u64()?, r.u64()?, r.u64()?);
        if m != self.m || k != u64::from(self.k) {
            return Err(format!(
                "bloom geometry mismatch: checkpoint m={m}/k={k}, store m={}/k={} \
                 (resume with the same --bloom sizing)",
                self.m, self.k
            ));
        }
        for word in &mut self.bits {
            *word = r.u64()?;
        }
        self.ones = ones;
        r.finish()
    }
}

/// Process-unique sequence for table/scratch file names.
static FILE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A process-unique file/dir name: `{prefix}-{pid}-{seq}`. Shared with the
/// explorer's spill files so every on-disk artifact follows one naming
/// scheme.
pub(crate) fn unique_name(prefix: &str) -> String {
    format!(
        "{prefix}-{}-{}",
        std::process::id(),
        FILE_SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

/// File-backed open-addressing per-shard backend — the out-of-core store.
///
/// Layout: a sparse file of 8-byte little-endian slots (a power of two),
/// linear probing from `splitmix64(fp) & mask`, slot value `0` meaning
/// empty (the fingerprint `0` itself is tracked by a one-bit side flag).
/// When occupancy crosses ⅞ the table grows by rehash into a fresh file of
/// twice the slots and the old file is deleted. All I/O is positioned
/// (`read_at`/`write_at`), so the OS page cache keeps the hot prefix of the
/// probe space resident and evicts the rest — RSS tracks the working set,
/// not the table.
///
/// I/O errors (disk full, table file unlinked underneath us) panic: a
/// dedup store that silently loses inserts would corrupt state counts.
#[derive(Debug)]
pub struct MmapStore {
    file: File,
    path: PathBuf,
    /// Slot count, always a power of two.
    slots: u64,
    /// Occupied (non-empty) slots.
    occupied: u64,
    /// Whether the fingerprint `0` (the empty-slot sentinel) is present.
    has_zero: bool,
    /// Shared total-file-bytes counter, so a [`ShardedIndex`] can report
    /// byte usage without locking every shard.
    file_bytes: Option<Arc<AtomicUsize>>,
}

impl MmapStore {
    /// Minimum slot count per table (one page of slots).
    const MIN_SLOTS: u64 = 512;
    const SLOT: u64 = 8;

    /// Creates a store whose initial table file is ~`initial_bytes` large,
    /// in `dir`. The file is removed on drop.
    pub fn in_dir(dir: &Path, initial_bytes: usize) -> io::Result<MmapStore> {
        MmapStore::with_counter(dir, initial_bytes, None)
    }

    /// Like [`MmapStore::in_dir`], registering table bytes in `counter`.
    pub fn with_counter(
        dir: &Path,
        initial_bytes: usize,
        counter: Option<Arc<AtomicUsize>>,
    ) -> io::Result<MmapStore> {
        let slots = ((initial_bytes as u64) / MmapStore::SLOT)
            .next_power_of_two()
            .max(MmapStore::MIN_SLOTS);
        let (file, path) = MmapStore::create_table(dir, slots)?;
        if let Some(c) = &counter {
            c.fetch_add((slots * MmapStore::SLOT) as usize, Ordering::Relaxed);
        }
        Ok(MmapStore {
            file,
            path,
            slots,
            occupied: 0,
            has_zero: false,
            file_bytes: counter,
        })
    }

    fn create_table(dir: &Path, slots: u64) -> io::Result<(File, PathBuf)> {
        let path = dir.join(format!("{}.fptable", unique_name("co-ring-fp")));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        // Sparse: unwritten slots read back as zero (= empty) without
        // consuming disk blocks up front.
        file.set_len(slots * MmapStore::SLOT)?;
        Ok((file, path))
    }

    fn read_slot(file: &File, i: u64) -> u64 {
        let mut buf = [0u8; 8];
        file.read_exact_at(&mut buf, i * MmapStore::SLOT)
            .expect("mmap store: table read failed");
        u64::from_le_bytes(buf)
    }

    fn write_slot(file: &File, i: u64, fp: u64) {
        file.write_all_at(&fp.to_le_bytes(), i * MmapStore::SLOT)
            .expect("mmap store: table write failed");
    }

    /// Probes for `fp` (non-zero); returns `Ok(slot)` if present at `slot`,
    /// `Err(slot)` with the first empty slot otherwise.
    fn probe(file: &File, slots: u64, fp: u64) -> Result<u64, u64> {
        let mask = slots - 1;
        let mut i = splitmix64(fp) & mask;
        loop {
            match MmapStore::read_slot(file, i) {
                0 => return Err(i),
                v if v == fp => return Ok(i),
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn grow(&mut self) {
        let new_slots = self.slots * 2;
        let (new_file, new_path) =
            MmapStore::create_table(self.path.parent().expect("table has a dir"), new_slots)
                .expect("mmap store: grow failed");
        // Rehash: stream the old table in page-sized chunks, re-probe every
        // occupied slot into the doubled file.
        let mut buf = [0u8; 4096];
        let mut off = 0u64;
        let total = self.slots * MmapStore::SLOT;
        while off < total {
            let n = ((total - off) as usize).min(buf.len());
            self.file
                .read_exact_at(&mut buf[..n], off)
                .expect("mmap store: rehash read failed");
            for chunk in buf[..n].chunks_exact(8) {
                let fp = u64::from_le_bytes(chunk.try_into().expect("8B"));
                if fp != 0 {
                    let slot = MmapStore::probe(&new_file, new_slots, fp)
                        .expect_err("rehash inserts are distinct");
                    MmapStore::write_slot(&new_file, slot, fp);
                }
            }
            off += n as u64;
        }
        let _ = std::fs::remove_file(&self.path);
        if let Some(c) = &self.file_bytes {
            // Net growth: new table added, old table removed.
            c.fetch_add(
                ((new_slots - self.slots) * MmapStore::SLOT) as usize,
                Ordering::Relaxed,
            );
        }
        self.file = new_file;
        self.path = new_path;
        self.slots = new_slots;
    }

    /// Non-mutating membership probe: true iff `fp` is present.
    #[must_use]
    pub fn contains(&self, fp: u64) -> bool {
        if fp == 0 {
            return self.has_zero;
        }
        MmapStore::probe(&self.file, self.slots, fp).is_ok()
    }

    /// Number of fingerprints stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.occupied as usize + usize::from(self.has_zero)
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The table file currently backing this store.
    #[must_use]
    pub fn table_path(&self) -> &Path {
        &self.path
    }

    /// Streams every stored fingerprint to `visit`.
    fn for_each(&self, mut visit: impl FnMut(u64)) {
        if self.has_zero {
            visit(0);
        }
        let mut buf = [0u8; 4096];
        let mut off = 0u64;
        let total = self.slots * MmapStore::SLOT;
        while off < total {
            let n = ((total - off) as usize).min(buf.len());
            self.file
                .read_exact_at(&mut buf[..n], off)
                .expect("mmap store: scan read failed");
            for chunk in buf[..n].chunks_exact(8) {
                let fp = u64::from_le_bytes(chunk.try_into().expect("8B"));
                if fp != 0 {
                    visit(fp);
                }
            }
            off += n as u64;
        }
    }
}

impl FingerprintStore for MmapStore {
    fn insert(&mut self, fp: u64) -> bool {
        if fp == 0 {
            let new = !self.has_zero;
            self.has_zero = true;
            return new;
        }
        // Keep occupancy under ⅞ so probe chains stay short.
        if (self.occupied + 1) * 8 >= self.slots * 7 {
            self.grow();
        }
        match MmapStore::probe(&self.file, self.slots, fp) {
            Ok(_) => false,
            Err(slot) => {
                MmapStore::write_slot(&self.file, slot, fp);
                self.occupied += 1;
                true
            }
        }
    }

    fn bytes(&self) -> DedupBytes {
        DedupBytes {
            heap: 0,
            file: (self.slots * MmapStore::SLOT) as usize,
        }
    }

    fn save(&self, out: &mut Vec<u8>) {
        put_u64(out, self.len() as u64);
        self.for_each(|fp| put_u64(out, fp));
    }

    fn load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = ByteReader::new(bytes);
        let count = r.len()?;
        for _ in 0..count {
            self.insert(r.u64()?);
        }
        r.finish()
    }
}

impl Drop for MmapStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
        if let Some(c) = &self.file_bytes {
            c.fetch_sub((self.slots * MmapStore::SLOT) as usize, Ordering::Relaxed);
        }
    }
}

/// SplitMix64 diffusion — spreads fingerprint entropy over all 64 bits so
/// both the shard selector (top bits) and the Bloom probes see uniform
/// input even if the underlying hash has weak high bits.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A concurrently usable visited-fingerprint index: [`FP_SHARDS`] locks,
/// each guarding one [`FingerprintStore`], sharded by fingerprint prefix.
///
/// `insert` takes exactly one shard lock; the global admitted count is an
/// atomic so limit checks never lock anything. For the mmap backend the
/// index creates a unique scratch subdirectory for its table files and
/// removes it on drop.
pub struct ShardedIndex {
    kind: DedupKind,
    shards: Vec<Mutex<Box<dyn FingerprintStore>>>,
    admitted: AtomicUsize,
    /// Fixed total heap cost for backends that preallocate (Bloom);
    /// `None` for backends whose cost grows per entry (exact, mmap).
    fixed_bytes: Option<DedupBytes>,
    /// Live total of table-file bytes (mmap backend; zero otherwise).
    file_bytes: Arc<AtomicUsize>,
    /// Scratch subdirectory owned (and removed on drop) by this index.
    scratch: Option<PathBuf>,
}

impl ShardedIndex {
    /// Builds an index with the given backend.
    ///
    /// `capacity` and `fp_budget` size the Bloom backend (capacity is split
    /// evenly across shards); the exact backend ignores both. The mmap
    /// backend puts its table files under the system temp dir — use
    /// [`ShardedIndex::with_dir`] to choose the directory.
    #[must_use]
    pub fn new(kind: DedupKind, capacity: usize, fp_budget: f64) -> ShardedIndex {
        ShardedIndex::with_dir(kind, capacity, fp_budget, None)
    }

    /// Builds an index, placing any file-backed storage under `scratch_dir`
    /// (`None` = the system temp dir). A unique subdirectory is created
    /// there and removed when the index is dropped.
    #[must_use]
    pub fn with_dir(
        kind: DedupKind,
        capacity: usize,
        fp_budget: f64,
        scratch_dir: Option<&Path>,
    ) -> ShardedIndex {
        let file_bytes = Arc::new(AtomicUsize::new(0));
        let scratch = match kind {
            DedupKind::Mmap { .. } => {
                let root = scratch_dir
                    .map(Path::to_path_buf)
                    .unwrap_or_else(std::env::temp_dir);
                let dir = root.join(unique_name("co-ring-dedup"));
                std::fs::create_dir_all(&dir).expect("mmap store: scratch dir creation failed");
                Some(dir)
            }
            _ => None,
        };
        let shards: Vec<Mutex<Box<dyn FingerprintStore>>> = (0..FP_SHARDS)
            .map(|_| -> Mutex<Box<dyn FingerprintStore>> {
                match kind {
                    DedupKind::Exact => Mutex::new(Box::new(ExactStore::new())),
                    DedupKind::Bloom => Mutex::new(Box::new(BloomStore::for_capacity(
                        capacity.div_ceil(FP_SHARDS),
                        fp_budget,
                    ))),
                    DedupKind::Mmap { budget } => Mutex::new(Box::new(
                        MmapStore::with_counter(
                            scratch.as_deref().expect("mmap scratch dir"),
                            budget.div_ceil(FP_SHARDS),
                            Some(Arc::clone(&file_bytes)),
                        )
                        .expect("mmap store: table creation failed"),
                    )),
                }
            })
            .collect();
        let fixed_bytes = match kind {
            DedupKind::Exact | DedupKind::Mmap { .. } => None,
            DedupKind::Bloom => {
                let mut total = DedupBytes::default();
                for s in &shards {
                    let b = s.lock().expect("fresh shard").bytes();
                    total.heap += b.heap;
                    total.file += b.file;
                }
                Some(total)
            }
        };
        ShardedIndex {
            kind,
            shards,
            admitted: AtomicUsize::new(0),
            fixed_bytes,
            file_bytes,
            scratch,
        }
    }

    /// The backend kind this index was built with.
    #[must_use]
    pub fn kind(&self) -> DedupKind {
        self.kind
    }

    /// Inserts a fingerprint; returns whether it was new (admitted).
    pub fn insert(&self, fp: u64) -> bool {
        let h = splitmix64(fp);
        let shard = (h >> (64 - SHARD_BITS)) as usize;
        let new = self.shards[shard].lock().expect("shard poisoned").insert(h);
        if new {
            self.admitted.fetch_add(1, Ordering::Relaxed);
        }
        new
    }

    /// Number of fingerprints admitted as new so far.
    #[must_use]
    pub fn admitted(&self) -> usize {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Current byte cost of the index, split heap/file, cheap enough to
    /// check per insert: exact backends pay 8 B of heap per admitted entry,
    /// Bloom backends a fixed heap preallocation, mmap backends the live
    /// total of their table files (tracked by a shared atomic — no shard
    /// locks taken).
    #[must_use]
    pub fn bytes(&self) -> DedupBytes {
        self.fixed_bytes.unwrap_or_else(|| match self.kind {
            DedupKind::Mmap { .. } => DedupBytes {
                heap: 0,
                file: self.file_bytes.load(Ordering::Relaxed),
            },
            _ => DedupBytes {
                heap: self.admitted() * std::mem::size_of::<u64>(),
                file: 0,
            },
        })
    }

    /// Serializes every shard's contents for checkpointing, in shard order.
    #[must_use]
    pub fn save_shards(&self) -> Vec<Vec<u8>> {
        self.shards
            .iter()
            .map(|s| {
                let mut blob = Vec::new();
                s.lock().expect("shard poisoned").save(&mut blob);
                blob
            })
            .collect()
    }

    /// Restores shard contents saved by [`ShardedIndex::save_shards`] into
    /// this freshly built (empty) index, and sets the admitted count (which
    /// probabilistic backends cannot recount from their own contents).
    pub fn load_shards(&self, blobs: &[Vec<u8>], admitted: usize) -> Result<(), String> {
        if blobs.len() != self.shards.len() {
            return Err(format!(
                "checkpoint has {} dedup shards, index has {}",
                blobs.len(),
                self.shards.len()
            ));
        }
        for (i, (shard, blob)) in self.shards.iter().zip(blobs).enumerate() {
            shard
                .lock()
                .expect("shard poisoned")
                .load(blob)
                .map_err(|e| format!("dedup shard {i}: {e}"))?;
        }
        self.admitted.store(admitted, Ordering::Relaxed);
        Ok(())
    }

    /// Mean measured saturation across shards (Bloom only; `None` for
    /// exact and mmap backends, which have no false positives to budget).
    #[must_use]
    pub fn saturation(&self) -> Option<f64> {
        match self.kind {
            DedupKind::Exact | DedupKind::Mmap { .. } => None,
            DedupKind::Bloom => Some(self.measured_saturation()),
        }
    }

    fn measured_saturation(&self) -> f64 {
        // Downcast-free measurement: re-insert nothing; derive from the
        // admitted count and per-shard geometry. ones ≤ k·admitted, and the
        // expected saturation for n insertions into m bits with k probes is
        // 1 - (1 - 1/m)^{kn}. We report that analytic value; per-bit truth
        // lives in BloomStore::saturation for direct users.
        let per_shard = self.admitted() as f64 / FP_SHARDS as f64;
        let m = (self.bytes().heap * 8) as f64 / FP_SHARDS as f64;
        if m == 0.0 {
            return 0.0;
        }
        // k is re-derived from sizing; sized filters use k = ceil((m/n)ln2)
        // but we only need a representative k for the estimate. Use the
        // classic optimum bound which is what for_capacity targets.
        let k = ((m / per_shard.max(1.0)) * std::f64::consts::LN_2)
            .ceil()
            .clamp(1.0, 16.0);
        1.0 - (1.0 - 1.0 / m).powf(k * per_shard)
    }
}

impl Drop for ShardedIndex {
    fn drop(&mut self) {
        // Table files remove themselves (MmapStore::drop); the unique
        // subdir they lived in goes last. Shards are still alive here, so
        // drain them explicitly first.
        if let Some(dir) = self.scratch.take() {
            self.shards.clear();
            let _ = std::fs::remove_dir(&dir);
        }
    }
}

impl fmt::Debug for ShardedIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("kind", &self.kind)
            .field("shards", &self.shards.len())
            .field("admitted", &self.admitted())
            .field("bytes", &self.bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> PathBuf {
        let dir = std::env::temp_dir().join(unique_name("co-ring-dedup-test"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn exact_store_dedups() {
        let mut s = ExactStore::new();
        assert!(s.insert(1));
        assert!(s.insert(2));
        assert!(!s.insert(1));
        assert_eq!(s.bytes().heap, 16);
        assert_eq!(s.bytes().file, 0);
    }

    #[test]
    fn bloom_never_readmits_an_inserted_fingerprint() {
        let mut b = BloomStore::for_capacity(1_000, 0.01);
        let fps: Vec<u64> = (0..1_000u64).map(|i| splitmix64(i ^ 0xDEAD)).collect();
        for &fp in &fps {
            b.insert(fp);
        }
        for &fp in &fps {
            assert!(!b.insert(fp), "no false negatives allowed");
        }
    }

    #[test]
    fn bloom_false_positive_rate_within_budget() {
        let budget = 0.01;
        let mut b = BloomStore::for_capacity(10_000, budget);
        for i in 0..10_000u64 {
            b.insert(splitmix64(i));
        }
        // Probe 10k fingerprints that were never inserted.
        let false_positives = (0..10_000u64)
            .map(|i| splitmix64(i.wrapping_add(1 << 40)))
            .filter(|&fp| !b.clone_probe(fp))
            .count();
        // clone_probe returns "is new"; a false positive is "not new".
        let rate = false_positives as f64 / 10_000.0;
        assert!(
            rate < budget * 3.0,
            "measured FP rate {rate} blows the {budget} budget"
        );
        assert!(b.fp_estimate() < budget * 3.0);
        assert!(b.saturation() < 0.6);
    }

    impl BloomStore {
        /// Test-only non-mutating membership probe: true iff `fp` would be
        /// admitted as new.
        fn clone_probe(&self, fp: u64) -> bool {
            (0..self.k).any(|p| {
                let bit = self.bit_index(fp, p);
                self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) == 0
            })
        }
    }

    #[test]
    fn bloom_memory_is_fixed() {
        let mut b = BloomStore::for_capacity(100, 0.01);
        let before = b.bytes();
        for i in 0..10_000u64 {
            b.insert(splitmix64(i));
        }
        assert_eq!(b.bytes(), before, "bloom storage must not grow");
    }

    /// The store-level backend-equivalence property test of the satellite:
    /// one duplicate-heavy insert sequence that forces several
    /// grow-by-rehash boundaries, driven through all three stores in
    /// lockstep; exact and mmap must agree on every single answer, bloom
    /// may only turn `true` into `false` (a false positive), never the
    /// reverse.
    #[test]
    fn all_stores_agree_on_the_same_insert_sequence() {
        let dir = tmp();
        let mut exact = ExactStore::new();
        let mut bloom = BloomStore::for_capacity(10_000, 1e-4);
        // Start tiny (MIN_SLOTS) so 3 000 distinct inserts at ⅞ load cross
        // several doublings: 512 → 1024 → 2048 → 4096 slots.
        let mut mmap = MmapStore::in_dir(&dir, 1).unwrap();
        assert_eq!(mmap.bytes().file, 512 * 8, "budget floors at MIN_SLOTS");

        // Deterministic duplicate-heavy stream: ~3000 distinct values, each
        // appearing multiple times, plus the empty-slot sentinel 0.
        let stream: Vec<u64> = (0..10_000u64)
            .map(|i| match i % 3 {
                0 => splitmix64(i % 3_000),
                1 => splitmix64((i * 7) % 3_000),
                _ => (i * 31) % 3_000, // small raw values incl. 0
            })
            .collect();
        for &fp in &stream {
            let e = exact.insert(fp);
            let m = mmap.insert(fp);
            let b = bloom.insert(fp);
            assert_eq!(e, m, "exact/mmap diverged on {fp:#x}");
            assert!(e || !b, "bloom admitted a duplicate {fp:#x}");
        }
        assert_eq!(exact.bytes().heap, mmap.len() * 8);
        assert!(
            mmap.bytes().file > 512 * 8,
            "3000 distinct inserts must have grown the table"
        );
        // Membership after growth: every inserted value present, a fresh
        // range absent.
        for &fp in &stream {
            assert!(mmap.contains(fp));
            assert!(!exact.insert(fp) && !mmap.insert(fp));
        }
        for i in 0..1_000u64 {
            let fp = splitmix64(i.wrapping_add(1 << 50));
            assert!(!mmap.contains(fp), "phantom member {fp:#x}");
        }
        drop(mmap);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn mmap_store_removes_its_file_on_drop_and_grow() {
        let dir = tmp();
        let mut m = MmapStore::in_dir(&dir, 1).unwrap();
        let first = m.table_path().to_path_buf();
        assert!(first.exists());
        for i in 0..1_000u64 {
            m.insert(splitmix64(i));
        }
        let grown = m.table_path().to_path_buf();
        assert_ne!(first, grown, "growth rehashes into a fresh file");
        assert!(!first.exists(), "old table must be deleted after growth");
        drop(m);
        assert!(!grown.exists(), "table must be deleted on drop");
        std::fs::remove_dir(&dir).expect("scratch dir left non-empty");
    }

    #[test]
    fn stores_save_and_load_roundtrip() {
        let dir = tmp();
        let fps: Vec<u64> = (0..2_000u64).map(splitmix64).chain([0]).collect();

        let mut exact = ExactStore::new();
        let mut bloom = BloomStore::for_capacity(4_096, 1e-4);
        let mut mmap = MmapStore::in_dir(&dir, 1).unwrap();
        for &fp in &fps {
            exact.insert(fp);
            bloom.insert(fp);
            mmap.insert(fp);
        }

        let mut exact2 = ExactStore::new();
        let mut bloom2 = BloomStore::for_capacity(4_096, 1e-4);
        let mut mmap2 = MmapStore::in_dir(&dir, 1).unwrap();
        for (src, dst) in [
            (
                &exact as &dyn FingerprintStore,
                &mut exact2 as &mut dyn FingerprintStore,
            ),
            (&bloom, &mut bloom2),
            (&mmap, &mut mmap2),
        ] {
            let mut blob = Vec::new();
            src.save(&mut blob);
            dst.load(&blob).unwrap();
        }
        for &fp in &fps {
            assert!(!exact2.insert(fp), "exact lost {fp:#x} across save/load");
            assert!(!bloom2.insert(fp), "bloom lost {fp:#x} across save/load");
            assert!(!mmap2.insert(fp), "mmap lost {fp:#x} across save/load");
        }
        // Geometry mismatch is rejected, not silently mis-probed.
        let mut blob = Vec::new();
        bloom.save(&mut blob);
        let mut tiny = BloomStore::for_capacity(8, 0.5);
        assert!(tiny.load(&blob).is_err());
        drop(mmap);
        drop(mmap2);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn sharded_index_counts_admissions() {
        for kind in DedupKind::ALL {
            let idx = ShardedIndex::new(kind, 10_000, 1e-4);
            let mut admitted = 0usize;
            for i in 0..5_000u64 {
                if idx.insert(i) {
                    admitted += 1;
                }
            }
            assert_eq!(idx.admitted(), admitted, "{kind}");
            // Exact admits everything; bloom may lose a handful to FPs.
            assert!(admitted > 4_900, "{kind}: admitted only {admitted}");
            // Re-inserting admits nothing new.
            for i in 0..5_000u64 {
                assert!(!idx.insert(i), "{kind}: duplicate admitted");
            }
            assert_eq!(idx.admitted(), admitted, "{kind}");
        }
    }

    #[test]
    fn sharded_index_is_thread_safe() {
        for kind in [DedupKind::Exact, DedupKind::Mmap { budget: 1 }] {
            let idx = ShardedIndex::new(kind, 0, 0.0);
            std::thread::scope(|scope| {
                for t in 0..8u64 {
                    let idx = &idx;
                    scope.spawn(move || {
                        // Overlapping ranges: every value raced by two threads.
                        for i in 0..2_000u64 {
                            idx.insert((t / 2) * 10_000 + i);
                        }
                    });
                }
            });
            assert_eq!(idx.admitted(), 4 * 2_000, "{kind}");
        }
        let exact = ShardedIndex::new(DedupKind::Exact, 0, 0.0);
        for i in 0..100u64 {
            exact.insert(i);
        }
        assert_eq!(exact.bytes().heap, 100 * 8);
    }

    #[test]
    fn exact_bytes_grow_bloom_bytes_do_not() {
        let exact = ShardedIndex::new(DedupKind::Exact, 1_000, 1e-2);
        let bloom = ShardedIndex::new(DedupKind::Bloom, 1_000, 1e-2);
        let bloom_before = bloom.bytes();
        for i in 0..1_000u64 {
            exact.insert(i);
            bloom.insert(i);
        }
        assert_eq!(exact.bytes().heap, exact.admitted() * 8);
        assert_eq!(exact.bytes().file, 0);
        assert_eq!(bloom.bytes(), bloom_before);
        assert!(bloom.saturation().is_some());
        assert!(exact.saturation().is_none());
    }

    #[test]
    fn mmap_index_accounts_file_bytes_and_cleans_up() {
        let root = tmp();
        let idx = ShardedIndex::with_dir(DedupKind::Mmap { budget: 1 }, 0, 0.0, Some(&root));
        assert!(idx.saturation().is_none());
        let before = idx.bytes();
        assert_eq!(before.heap, 0);
        assert_eq!(before.file, FP_SHARDS * 512 * 8);
        for i in 0..60_000u64 {
            idx.insert(i);
        }
        let after = idx.bytes();
        assert!(after.file > before.file, "shards must have grown");
        assert_eq!(after.heap, 0);
        let tables: Vec<_> = std::fs::read_dir(&root)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(tables.len(), 1, "one scratch subdir: {tables:?}");
        drop(idx);
        assert!(
            !tables[0].exists(),
            "scratch subdir must be removed on drop"
        );
        let _ = std::fs::remove_dir(&root);
    }

    #[test]
    fn sharded_index_save_load_roundtrip_preserves_membership() {
        for kind in DedupKind::ALL {
            let idx = ShardedIndex::new(kind, 10_000, 1e-4);
            for i in 0..5_000u64 {
                idx.insert(i);
            }
            let blobs = idx.save_shards();
            let admitted = idx.admitted();

            let fresh = ShardedIndex::new(kind, 10_000, 1e-4);
            fresh.load_shards(&blobs, admitted).unwrap();
            assert_eq!(fresh.admitted(), admitted, "{kind}");
            for i in 0..5_000u64 {
                assert!(!fresh.insert(i), "{kind}: lost {i} across save/load");
            }
            assert_eq!(fresh.admitted(), admitted, "{kind}");
            assert!(fresh
                .load_shards(&blobs[..FP_SHARDS - 1], admitted)
                .is_err());
        }
    }

    #[test]
    fn dedup_kind_parse_roundtrip() {
        for kind in DedupKind::ALL {
            assert_eq!(DedupKind::parse(&kind.to_string()), Some(kind));
        }
        for kind in [
            DedupKind::Mmap { budget: 4096 },
            DedupKind::Mmap { budget: 64 << 20 },
        ] {
            assert_eq!(
                DedupKind::parse(&kind.to_string()),
                Some(kind),
                "non-default budgets must round-trip"
            );
        }
        assert_eq!(
            DedupKind::parse("mmap"),
            Some(DedupKind::Mmap {
                budget: MMAP_DEFAULT_BUDGET
            })
        );
        assert_eq!(
            DedupKind::parse("mmap:64k"),
            Some(DedupKind::Mmap { budget: 64 << 10 })
        );
        assert_eq!(
            DedupKind::parse("mmap:2M"),
            Some(DedupKind::Mmap { budget: 2 << 20 })
        );
        assert_eq!(
            DedupKind::parse("mmap:1g"),
            Some(DedupKind::Mmap { budget: 1 << 30 })
        );
        for bad in [
            "cuckoo",
            "mmap:",
            "mmap:0",
            "mmap:x",
            "mmap:9999999999999999999999",
        ] {
            assert_eq!(DedupKind::parse(bad), None, "{bad:?}");
            let err = bad.parse::<DedupKind>().unwrap_err().to_string();
            assert!(
                err.contains("one of: exact, bloom, mmap[:BUDGET]"),
                "error must list valid kinds: {err}"
            );
        }
        assert_eq!(DedupKind::default(), DedupKind::Exact);
        assert_eq!(DedupKind::ALL.len(), DedupKind::NAMES.len());
    }
}
