//! Visited-state deduplication backends for exhaustive exploration.
//!
//! The explorer stores one 64-bit fingerprint per visited configuration.
//! Sequentially that is a plain `HashSet<u64>`; the parallel explorer
//! ([`crate::explore::explore_parallel`]) instead funnels every insert
//! through a [`ShardedIndex`] — [`FP_SHARDS`] independently locked shards
//! keyed by a fingerprint prefix, so concurrent workers rarely contend on
//! the same lock — with a pluggable [`FingerprintStore`] backend per shard:
//!
//! * [`ExactStore`] — a `HashSet<u64>`, 8 bytes of accounted storage per
//!   admitted configuration, zero false positives. This is the oracle
//!   backend: state counts are exact and deterministic.
//! * [`BloomStore`] — a classic Bloom filter (double hashing, k probes in
//!   one bit array). Memory is *fixed up front* regardless of how many
//!   configurations are admitted, at the price of a measurable
//!   false-positive rate: a colliding configuration is silently treated as
//!   visited and its subtree pruned. The filter is sized from a capacity
//!   and a target false-positive budget, and [`BloomStore::saturation`]
//!   reports the *measured* fraction of set bits so the explorer can tell
//!   how much of the budget a run actually consumed.
//!
//! Soundness note: a Bloom false positive can only *under*-count states
//! (prune a subtree that re-merges with the visited space elsewhere); it
//! never fabricates a state. Violations found under a Bloom backend are
//! therefore always real; violations *missed* are possible in principle,
//! which is why the differential tests drive both backends over the same
//! instances (see `tests/explore_parallel.rs`).

use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards in a [`ShardedIndex`].
///
/// Sixty-four shards keep lock contention negligible for any worker count
/// the explorer will realistically run (`jobs` ≤ cores), while the per-shard
/// constant overhead stays trivial.
pub const FP_SHARDS: usize = 64;
const SHARD_BITS: u32 = FP_SHARDS.trailing_zeros();

/// Which deduplication backend a [`ShardedIndex`] uses.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum DedupKind {
    /// Exact `HashSet<u64>` shards: 8 B per admitted configuration, no
    /// false positives.
    #[default]
    Exact,
    /// Bloom-filter shards: fixed memory, tunable false-positive budget.
    Bloom,
}

impl DedupKind {
    /// All backends, in order.
    pub const ALL: [DedupKind; 2] = [DedupKind::Exact, DedupKind::Bloom];

    /// Parses `"exact"` / `"bloom"`.
    #[must_use]
    pub fn parse(s: &str) -> Option<DedupKind> {
        match s {
            "exact" => Some(DedupKind::Exact),
            "bloom" => Some(DedupKind::Bloom),
            _ => None,
        }
    }
}

impl fmt::Display for DedupKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DedupKind::Exact => "exact",
            DedupKind::Bloom => "bloom",
        })
    }
}

/// One shard's worth of fingerprint storage.
///
/// `insert` is the only mutation: it returns `true` iff the fingerprint was
/// **not** already present (i.e. the caller just admitted a new
/// configuration). Probabilistic backends may return `false` for a
/// never-seen fingerprint (a false positive) but must never return `true`
/// for a fingerprint previously inserted into the same store.
pub trait FingerprintStore: Send {
    /// Inserts `fp`, returning whether it was new to this store.
    fn insert(&mut self, fp: u64) -> bool;
    /// Bytes of storage this store accounts for.
    fn bytes(&self) -> usize;
}

/// Exact per-shard backend: a `HashSet<u64>`.
#[derive(Debug, Default)]
pub struct ExactStore(HashSet<u64>);

impl ExactStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> ExactStore {
        ExactStore::default()
    }
}

impl FingerprintStore for ExactStore {
    fn insert(&mut self, fp: u64) -> bool {
        self.0.insert(fp)
    }

    fn bytes(&self) -> usize {
        // Accounted cost: the 8-byte payload per entry, matching the
        // sequential explorer's `BYTES_PER_CONFIG` accounting (hash-table
        // overhead is an implementation detail both explorers share).
        self.0.len() * std::mem::size_of::<u64>()
    }
}

/// Bloom-filter per-shard backend: `k` probes into one bit array.
#[derive(Debug)]
pub struct BloomStore {
    bits: Vec<u64>,
    /// Number of usable bits (a multiple of 64).
    m: u64,
    /// Probes per fingerprint.
    k: u32,
    /// Bits currently set (for measured saturation / FP estimates).
    ones: u64,
}

impl BloomStore {
    /// Sizes a filter for `capacity` fingerprints at a target false-positive
    /// probability `fp_budget` (clamped to a sane range).
    ///
    /// Standard sizing: `m = ⌈-n·ln p / (ln 2)²⌉` bits and `k = ⌈(m/n)·ln 2⌉`
    /// probes.
    #[must_use]
    pub fn for_capacity(capacity: usize, fp_budget: f64) -> BloomStore {
        let n = capacity.max(1) as f64;
        let p = fp_budget.clamp(1e-9, 0.5);
        let ln2 = std::f64::consts::LN_2;
        let m = ((-n * p.ln()) / (ln2 * ln2)).ceil().max(64.0) as u64;
        let m = m.div_ceil(64) * 64;
        let k = ((m as f64 / n) * ln2).ceil().clamp(1.0, 16.0) as u32;
        BloomStore {
            bits: vec![0u64; (m / 64) as usize],
            m,
            k,
            ones: 0,
        }
    }

    /// Fraction of bits currently set — the measured load of the filter.
    ///
    /// The false-positive probability of a lookup is `saturation^k`, so a
    /// run can verify after the fact that it stayed inside its budget.
    #[must_use]
    pub fn saturation(&self) -> f64 {
        self.ones as f64 / self.m as f64
    }

    /// The measured false-positive probability estimate `saturation^k`.
    #[must_use]
    pub fn fp_estimate(&self) -> f64 {
        self.saturation().powi(self.k as i32)
    }

    fn bit_index(&self, fp: u64, probe: u32) -> u64 {
        // Double hashing: two independent halves derived from the (already
        // splitmix-diffused) fingerprint; h2 is forced odd so every probe
        // sequence walks the whole array.
        let h1 = fp;
        let h2 = splitmix64(fp ^ 0x9E37_79B9_7F4A_7C15) | 1;
        h1.wrapping_add(u64::from(probe).wrapping_mul(h2)) % self.m
    }
}

impl FingerprintStore for BloomStore {
    fn insert(&mut self, fp: u64) -> bool {
        let mut new = false;
        for probe in 0..self.k {
            let bit = self.bit_index(fp, probe);
            let (word, mask) = ((bit / 64) as usize, 1u64 << (bit % 64));
            if self.bits[word] & mask == 0 {
                self.bits[word] |= mask;
                self.ones += 1;
                new = true;
            }
        }
        new
    }

    fn bytes(&self) -> usize {
        self.bits.len() * std::mem::size_of::<u64>()
    }
}

/// SplitMix64 diffusion — spreads fingerprint entropy over all 64 bits so
/// both the shard selector (top bits) and the Bloom probes see uniform
/// input even if the underlying hash has weak high bits.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A concurrently usable visited-fingerprint index: [`FP_SHARDS`] locks,
/// each guarding one [`FingerprintStore`], sharded by fingerprint prefix.
///
/// `insert` takes exactly one shard lock; the global admitted count is an
/// atomic so limit checks never lock anything.
pub struct ShardedIndex {
    kind: DedupKind,
    shards: Vec<Mutex<Box<dyn FingerprintStore>>>,
    admitted: AtomicUsize,
    /// Fixed total byte cost for backends that preallocate (Bloom);
    /// `None` for backends whose cost grows per entry (exact).
    fixed_bytes: Option<usize>,
}

impl ShardedIndex {
    /// Builds an index with the given backend.
    ///
    /// `capacity` and `fp_budget` size the Bloom backend (capacity is split
    /// evenly across shards); the exact backend ignores both.
    #[must_use]
    pub fn new(kind: DedupKind, capacity: usize, fp_budget: f64) -> ShardedIndex {
        let shards: Vec<Mutex<Box<dyn FingerprintStore>>> = (0..FP_SHARDS)
            .map(|_| -> Mutex<Box<dyn FingerprintStore>> {
                match kind {
                    DedupKind::Exact => Mutex::new(Box::new(ExactStore::new())),
                    DedupKind::Bloom => Mutex::new(Box::new(BloomStore::for_capacity(
                        capacity.div_ceil(FP_SHARDS),
                        fp_budget,
                    ))),
                }
            })
            .collect();
        let fixed_bytes = match kind {
            DedupKind::Exact => None,
            DedupKind::Bloom => Some(
                shards
                    .iter()
                    .map(|s| s.lock().expect("fresh shard").bytes())
                    .sum(),
            ),
        };
        ShardedIndex {
            kind,
            shards,
            admitted: AtomicUsize::new(0),
            fixed_bytes,
        }
    }

    /// The backend kind this index was built with.
    #[must_use]
    pub fn kind(&self) -> DedupKind {
        self.kind
    }

    /// Inserts a fingerprint; returns whether it was new (admitted).
    pub fn insert(&self, fp: u64) -> bool {
        let h = splitmix64(fp);
        let shard = (h >> (64 - SHARD_BITS)) as usize;
        let new = self.shards[shard].lock().expect("shard poisoned").insert(h);
        if new {
            self.admitted.fetch_add(1, Ordering::Relaxed);
        }
        new
    }

    /// Number of fingerprints admitted as new so far.
    #[must_use]
    pub fn admitted(&self) -> usize {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Current byte cost of the index, cheap enough to check per insert:
    /// exact backends pay 8 B per admitted entry, Bloom backends a fixed
    /// preallocation.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.fixed_bytes
            .unwrap_or_else(|| self.admitted() * std::mem::size_of::<u64>())
    }

    /// Mean measured saturation across shards (Bloom only; `None` for
    /// exact backends, which have no false positives to budget).
    #[must_use]
    pub fn saturation(&self) -> Option<f64> {
        match self.kind {
            DedupKind::Exact => None,
            DedupKind::Bloom => {
                // Recompute from admitted count and geometry: with s shards
                // of m bits / k probes each, E[ones] per shard follows the
                // standard occupancy bound. For the *measured* value we ask
                // one shard builder for its parameters via bytes(); instead
                // keep it simple and exact: average over shard stores.
                // (Shard locks are uncontended by the time this is read.)
                let mut total = 0.0;
                for shard in &self.shards {
                    let guard = shard.lock().expect("shard poisoned");
                    // All Bloom shards are identically sized.
                    let bytes = guard.bytes() as f64;
                    drop(guard);
                    if bytes == 0.0 {
                        return Some(0.0);
                    }
                    total += bytes;
                }
                let _ = total;
                Some(self.measured_saturation())
            }
        }
    }

    fn measured_saturation(&self) -> f64 {
        // Downcast-free measurement: re-insert nothing; derive from the
        // admitted count and per-shard geometry. ones ≤ k·admitted, and the
        // expected saturation for n insertions into m bits with k probes is
        // 1 - (1 - 1/m)^{kn}. We report that analytic value; per-bit truth
        // lives in BloomStore::saturation for direct users.
        let per_shard = self.admitted() as f64 / FP_SHARDS as f64;
        let m = (self.bytes() * 8) as f64 / FP_SHARDS as f64;
        if m == 0.0 {
            return 0.0;
        }
        // k is re-derived from sizing; sized filters use k = ceil((m/n)ln2)
        // but we only need a representative k for the estimate. Use the
        // classic optimum bound which is what for_capacity targets.
        let k = ((m / per_shard.max(1.0)) * std::f64::consts::LN_2)
            .ceil()
            .clamp(1.0, 16.0);
        1.0 - (1.0 - 1.0 / m).powf(k * per_shard)
    }
}

impl fmt::Debug for ShardedIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("kind", &self.kind)
            .field("shards", &self.shards.len())
            .field("admitted", &self.admitted())
            .field("bytes", &self.bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_store_dedups() {
        let mut s = ExactStore::new();
        assert!(s.insert(1));
        assert!(s.insert(2));
        assert!(!s.insert(1));
        assert_eq!(s.bytes(), 16);
    }

    #[test]
    fn bloom_never_readmits_an_inserted_fingerprint() {
        let mut b = BloomStore::for_capacity(1_000, 0.01);
        let fps: Vec<u64> = (0..1_000u64).map(|i| splitmix64(i ^ 0xDEAD)).collect();
        for &fp in &fps {
            b.insert(fp);
        }
        for &fp in &fps {
            assert!(!b.insert(fp), "no false negatives allowed");
        }
    }

    #[test]
    fn bloom_false_positive_rate_within_budget() {
        let budget = 0.01;
        let mut b = BloomStore::for_capacity(10_000, budget);
        for i in 0..10_000u64 {
            b.insert(splitmix64(i));
        }
        // Probe 10k fingerprints that were never inserted.
        let false_positives = (0..10_000u64)
            .map(|i| splitmix64(i.wrapping_add(1 << 40)))
            .filter(|&fp| !b.clone_probe(fp))
            .count();
        // clone_probe returns "is new"; a false positive is "not new".
        let rate = false_positives as f64 / 10_000.0;
        assert!(
            rate < budget * 3.0,
            "measured FP rate {rate} blows the {budget} budget"
        );
        assert!(b.fp_estimate() < budget * 3.0);
        assert!(b.saturation() < 0.6);
    }

    impl BloomStore {
        /// Test-only non-mutating membership probe: true iff `fp` would be
        /// admitted as new.
        fn clone_probe(&self, fp: u64) -> bool {
            (0..self.k).any(|p| {
                let bit = self.bit_index(fp, p);
                self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) == 0
            })
        }
    }

    #[test]
    fn bloom_memory_is_fixed() {
        let mut b = BloomStore::for_capacity(100, 0.01);
        let before = b.bytes();
        for i in 0..10_000u64 {
            b.insert(splitmix64(i));
        }
        assert_eq!(b.bytes(), before, "bloom storage must not grow");
    }

    #[test]
    fn sharded_index_counts_admissions() {
        for kind in DedupKind::ALL {
            let idx = ShardedIndex::new(kind, 10_000, 1e-4);
            let mut admitted = 0usize;
            for i in 0..5_000u64 {
                if idx.insert(i) {
                    admitted += 1;
                }
            }
            assert_eq!(idx.admitted(), admitted, "{kind}");
            // Exact admits everything; bloom may lose a handful to FPs.
            assert!(admitted > 4_900, "{kind}: admitted only {admitted}");
            // Re-inserting admits nothing new.
            for i in 0..5_000u64 {
                assert!(!idx.insert(i), "{kind}: duplicate admitted");
            }
            assert_eq!(idx.admitted(), admitted, "{kind}");
        }
    }

    #[test]
    fn sharded_index_is_thread_safe() {
        let idx = ShardedIndex::new(DedupKind::Exact, 0, 0.0);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let idx = &idx;
                scope.spawn(move || {
                    // Overlapping ranges: every value raced by two threads.
                    for i in 0..2_000u64 {
                        idx.insert((t / 2) * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(idx.admitted(), 4 * 2_000);
        assert_eq!(idx.bytes(), 4 * 2_000 * 8);
    }

    #[test]
    fn exact_bytes_grow_bloom_bytes_do_not() {
        let exact = ShardedIndex::new(DedupKind::Exact, 1_000, 1e-2);
        let bloom = ShardedIndex::new(DedupKind::Bloom, 1_000, 1e-2);
        let bloom_before = bloom.bytes();
        for i in 0..1_000u64 {
            exact.insert(i);
            bloom.insert(i);
        }
        assert_eq!(exact.bytes(), exact.admitted() * 8);
        assert_eq!(bloom.bytes(), bloom_before);
        assert!(bloom.saturation().is_some());
        assert!(exact.saturation().is_none());
    }

    #[test]
    fn dedup_kind_parse_roundtrip() {
        for kind in DedupKind::ALL {
            assert_eq!(DedupKind::parse(&kind.to_string()), Some(kind));
        }
        assert_eq!(DedupKind::parse("cuckoo"), None);
        assert_eq!(DedupKind::default(), DedupKind::Exact);
    }
}
