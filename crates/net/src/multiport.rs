//! General-graph substrate: asynchronous defective networks beyond rings.
//!
//! The paper's concluding open problem asks for content-oblivious leader
//! election in arbitrary 2-edge-connected networks. This module provides
//! the simulation substrate for that line of work: nodes of arbitrary
//! degree ([`GraphProtocol`], ports are `usize`), wired from a
//! [`MultiGraph`](crate::graph::MultiGraph), driven by the same adversarial
//! [`Scheduler`](crate::Scheduler) machinery and accounting as the ring
//! simulator.
//!
//! `co-core::general` builds a first content-oblivious algorithm on top
//! (the flood-echo wave); the ring-specific [`Simulation`](crate::Simulation)
//! remains the optimized engine for the paper's own algorithms.

use crate::graph::MultiGraph;
use crate::message::Message;
use crate::sched::{ChannelView, Scheduler};
use crate::topology::ChannelId;
use std::collections::VecDeque;
use std::fmt;

/// An event-driven node of arbitrary degree.
///
/// The general-graph analogue of [`Protocol`](crate::Protocol): ports are
/// dense indices `0..degree`, assigned per node in edge-insertion order of
/// the underlying [`MultiGraph`].
pub trait GraphProtocol<M: Message> {
    /// The node's decision, if any.
    type Output: Clone + fmt::Debug;

    /// Called once at start-up.
    fn on_start(&mut self, ctx: &mut GraphContext<'_, M>);

    /// Called when a message is delivered to `port`.
    fn on_message(&mut self, port: usize, msg: M, ctx: &mut GraphContext<'_, M>);

    /// Whether the node has terminated (then it ignores all messages).
    fn is_terminated(&self) -> bool {
        false
    }

    /// The node's current output.
    fn output(&self) -> Option<Self::Output>;
}

/// Send capability for [`GraphProtocol`] events.
#[derive(Debug)]
pub struct GraphContext<'a, M: Message> {
    node: usize,
    degree: usize,
    outbox: &'a mut Vec<(usize, M)>,
}

impl<M: Message> GraphContext<'_, M> {
    /// Sends `msg` out of `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree`.
    pub fn send(&mut self, port: usize, msg: M) {
        assert!(port < self.degree, "port {port} out of range");
        self.outbox.push((port, msg));
    }

    /// This node's index.
    #[must_use]
    pub fn node(&self) -> usize {
        self.node
    }

    /// This node's degree (number of ports).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }
}

/// Compiled channel table of a general graph.
#[derive(Clone, Debug)]
pub struct GraphWiring {
    n: usize,
    /// `port_base[v]` = first flat channel index of node `v`'s out-ports;
    /// `port_base[n]` = total channel count.
    port_base: Vec<usize>,
    /// `endpoints[flat]` = destination `(node, port)`.
    endpoints: Vec<(usize, usize)>,
}

impl GraphWiring {
    /// Compiles a multigraph into a channel table. Each undirected edge
    /// becomes one port at each endpoint (two consecutive ports for a
    /// self-loop) and two directed FIFO channels.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no vertices.
    #[must_use]
    pub fn from_graph(graph: &MultiGraph) -> GraphWiring {
        let n = graph.vertex_count();
        assert!(n > 0, "network must have at least one node");
        // Assign ports in edge-insertion order.
        let mut ports: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (peer, peer_port)
        for e in 0..graph.edge_count() {
            let (u, v) = graph.edge(e);
            let pu = ports[u].len();
            let pv = if u == v { pu + 1 } else { ports[v].len() };
            ports[u].push((v, pv));
            if u == v {
                ports[u].push((u, pu));
            } else {
                ports[v].push((u, pu));
            }
        }
        let mut port_base = Vec::with_capacity(n + 1);
        let mut acc = 0;
        for p in &ports {
            port_base.push(acc);
            acc += p.len();
        }
        port_base.push(acc);
        let mut endpoints = vec![(0usize, 0usize); acc];
        for (v, plist) in ports.iter().enumerate() {
            for (p, &(peer, peer_port)) in plist.iter().enumerate() {
                endpoints[port_base[v] + p] = (peer, peer_port);
            }
        }
        GraphWiring {
            n,
            port_base,
            endpoints,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the network is empty (never true for a valid wiring).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Degree of a node.
    #[must_use]
    pub fn degree(&self, node: usize) -> usize {
        self.port_base[node + 1] - self.port_base[node]
    }

    /// Total directed channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        *self.port_base.last().expect("non-empty")
    }

    fn flat(&self, node: usize, port: usize) -> usize {
        debug_assert!(port < self.degree(node));
        self.port_base[node] + port
    }

    /// Destination `(node, port)` of the channel leaving `(node, port)`.
    #[must_use]
    pub fn endpoint(&self, node: usize, port: usize) -> (usize, usize) {
        self.endpoints[self.flat(node, port)]
    }
}

/// How a general-graph run ended (same semantics as
/// [`Outcome`](crate::Outcome)).
pub use crate::sim::Outcome as GraphOutcome;

/// Result of [`GraphSim::run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphRunReport {
    /// How the run ended.
    pub outcome: GraphOutcome,
    /// Total messages sent.
    pub total_sent: u64,
    /// Deliveries performed.
    pub steps: u64,
}

/// Discrete-event simulation over an arbitrary multigraph.
pub struct GraphSim<M: Message, P: GraphProtocol<M>> {
    wiring: GraphWiring,
    nodes: Vec<P>,
    terminated: Vec<bool>,
    queues: Vec<VecDeque<(M, u64)>>,
    nonempty: Vec<usize>,
    scheduler: Box<dyn Scheduler>,
    send_seq: u64,
    total_sent: u64,
    steps: u64,
    delivered_to_terminated: u64,
    started: bool,
    outbox: Vec<(usize, M)>,
    ready_buf: Vec<ChannelView>,
}

impl<M: Message, P: GraphProtocol<M>> GraphSim<M, P> {
    /// Creates a simulation with one protocol instance per node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the wiring's node count.
    #[must_use]
    pub fn new(wiring: GraphWiring, nodes: Vec<P>, scheduler: Box<dyn Scheduler>) -> GraphSim<M, P> {
        assert_eq!(nodes.len(), wiring.len(), "one protocol per node");
        let channels = wiring.channel_count();
        let n = wiring.len();
        GraphSim {
            wiring,
            nodes,
            terminated: vec![false; n],
            queues: (0..channels).map(|_| VecDeque::new()).collect(),
            nonempty: Vec::new(),
            scheduler,
            send_seq: 0,
            total_sent: 0,
            steps: 0,
            delivered_to_terminated: 0,
            started: false,
            outbox: Vec::new(),
            ready_buf: Vec::new(),
        }
    }

    fn flush(&mut self, node: usize, outbox: &mut Vec<(usize, M)>) {
        for (port, msg) in outbox.drain(..) {
            let flat = self.wiring.flat(node, port);
            let seq = self.send_seq;
            self.send_seq += 1;
            self.total_sent += 1;
            if self.queues[flat].is_empty() {
                if let Err(at) = self.nonempty.binary_search(&flat) {
                    self.nonempty.insert(at, flat);
                }
            }
            self.queues[flat].push_back((msg, seq));
        }
    }

    fn event<F: FnOnce(&mut P, &mut GraphContext<'_, M>)>(&mut self, node: usize, f: F) {
        let mut outbox = std::mem::take(&mut self.outbox);
        {
            let mut ctx = GraphContext {
                node,
                degree: self.wiring.degree(node),
                outbox: &mut outbox,
            };
            f(&mut self.nodes[node], &mut ctx);
        }
        self.flush(node, &mut outbox);
        self.outbox = outbox;
        if !self.terminated[node] && self.nodes[node].is_terminated() {
            self.terminated[node] = true;
        }
    }

    /// Runs every `on_start` (idempotent).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for node in 0..self.nodes.len() {
            self.event(node, |p, ctx| p.on_start(ctx));
        }
    }

    /// Delivers one message; `None` when quiescent.
    pub fn step(&mut self) -> Option<()> {
        self.start();
        self.ready_buf.clear();
        for &flat in &self.nonempty {
            let head_seq = self.queues[flat].front().expect("nonempty set is accurate").1;
            self.ready_buf.push(ChannelView {
                id: ChannelId::from_index(flat),
                queue_len: self.queues[flat].len(),
                head_seq,
                direction: None,
            });
        }
        if self.ready_buf.is_empty() {
            return None;
        }
        let pick = self.scheduler.pick(&self.ready_buf);
        let flat = self.ready_buf[pick].id.index();
        let (msg, _seq) = self.queues[flat].pop_front().expect("picked non-empty");
        if self.queues[flat].is_empty() {
            if let Ok(at) = self.nonempty.binary_search(&flat) {
                self.nonempty.remove(at);
            }
        }
        // Reverse-map the flat source channel to its destination.
        let (src_node, src_port) = self.unflatten(flat);
        let (dst, dst_port) = self.wiring.endpoint(src_node, src_port);
        self.steps += 1;
        if self.terminated[dst] {
            self.delivered_to_terminated += 1;
        } else {
            self.event(dst, |p, ctx| p.on_message(dst_port, msg, ctx));
        }
        Some(())
    }

    fn unflatten(&self, flat: usize) -> (usize, usize) {
        // The node owning `flat` is the last one whose base is ≤ flat
        // (duplicated bases from zero-degree nodes are skipped naturally).
        let node = self.wiring.port_base.partition_point(|&b| b <= flat) - 1;
        (node, flat - self.wiring.port_base[node])
    }

    /// Runs to quiescence or budget exhaustion.
    pub fn run(&mut self, max_steps: u64) -> GraphRunReport {
        self.start();
        let mut executed = 0;
        while executed < max_steps && self.step().is_some() {
            executed += 1;
        }
        let in_flight: usize = self.queues.iter().map(VecDeque::len).sum();
        let outcome = if in_flight > 0 {
            GraphOutcome::BudgetExhausted
        } else if self.terminated.iter().all(|&t| t) {
            if self.delivered_to_terminated == 0 {
                GraphOutcome::QuiescentTerminated
            } else {
                GraphOutcome::TerminatedNonQuiescent
            }
        } else {
            GraphOutcome::Quiescent
        };
        GraphRunReport {
            outcome,
            total_sent: self.total_sent,
            steps: self.steps,
        }
    }

    /// A node's protocol instance.
    #[must_use]
    pub fn node(&self, node: usize) -> &P {
        &self.nodes[node]
    }

    /// All outputs, in node order.
    #[must_use]
    pub fn outputs(&self) -> Vec<Option<P::Output>> {
        self.nodes.iter().map(GraphProtocol::output).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::FifoScheduler;

    /// Relays the first pulse it sees to all other ports.
    #[derive(Debug)]
    struct FloodOnce {
        source: bool,
        reached: bool,
    }

    impl GraphProtocol<crate::Pulse> for FloodOnce {
        type Output = bool;
        fn on_start(&mut self, ctx: &mut GraphContext<'_, crate::Pulse>) {
            if self.source {
                self.reached = true;
                for p in 0..ctx.degree() {
                    ctx.send(p, crate::Pulse);
                }
            }
        }
        fn on_message(&mut self, port: usize, _m: crate::Pulse, ctx: &mut GraphContext<'_, crate::Pulse>) {
            if !self.reached {
                self.reached = true;
                for p in (0..ctx.degree()).filter(|&p| p != port) {
                    ctx.send(p, crate::Pulse);
                }
            }
        }
        fn output(&self) -> Option<bool> {
            Some(self.reached)
        }
    }

    fn flood(graph: &MultiGraph, source: usize) -> (GraphRunReport, Vec<bool>) {
        let wiring = GraphWiring::from_graph(graph);
        let nodes = (0..graph.vertex_count())
            .map(|v| FloodOnce {
                source: v == source,
                reached: false,
            })
            .collect();
        let mut sim: GraphSim<crate::Pulse, FloodOnce> =
            GraphSim::new(wiring, nodes, Box::new(FifoScheduler::new()));
        let report = sim.run(1_000_000);
        let reached = (0..graph.vertex_count())
            .map(|v| sim.node(v).reached)
            .collect();
        (report, reached)
    }

    #[test]
    fn flood_reaches_every_node_on_a_ring() {
        let g = MultiGraph::ring(6);
        let (report, reached) = flood(&g, 0);
        assert_eq!(report.outcome, GraphOutcome::Quiescent);
        assert!(reached.iter().all(|&r| r));
    }

    #[test]
    fn flood_reaches_every_node_on_a_theta_graph() {
        let mut g = MultiGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(2, 1);
        g.add_edge(0, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 1);
        let (report, reached) = flood(&g, 3);
        assert_eq!(report.outcome, GraphOutcome::Quiescent);
        assert!(reached.iter().all(|&r| r));
    }

    #[test]
    fn flood_stops_at_components() {
        let mut g = MultiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let (_, reached) = flood(&g, 0);
        assert_eq!(reached, vec![true, true, false, false]);
    }

    #[test]
    fn wiring_degrees_and_endpoints() {
        let mut g = MultiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 0); // self-loop: two ports at node 0
        let w = GraphWiring::from_graph(&g);
        assert_eq!(w.degree(0), 3);
        assert_eq!(w.degree(1), 2);
        assert_eq!(w.degree(2), 1);
        assert_eq!(w.channel_count(), 6);
        // Self-loop ports point at each other.
        assert_eq!(w.endpoint(0, 1), (0, 2));
        assert_eq!(w.endpoint(0, 2), (0, 1));
        // Regular edge round-trips.
        let (v, p) = w.endpoint(1, 1);
        assert_eq!(w.endpoint(v, p), (1, 1));
    }

    #[test]
    fn self_loop_delivery_works() {
        let mut g = MultiGraph::new(1);
        g.add_edge(0, 0);
        let (report, reached) = flood(&g, 0);
        assert_eq!(report.outcome, GraphOutcome::Quiescent);
        assert!(reached[0]);
        assert_eq!(report.total_sent, 2);
    }
}
