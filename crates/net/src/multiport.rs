//! General-graph substrate: asynchronous defective networks beyond rings.
//!
//! The paper's concluding open problem asks for content-oblivious leader
//! election in arbitrary 2-edge-connected networks. This module provides
//! the simulation substrate for that line of work: nodes of arbitrary
//! degree ([`GraphProtocol`], ports are `usize`), wired from a
//! [`MultiGraph`].
//!
//! [`GraphSim`] is a thin facade over the same generic
//! [`EventCore`] that powers the ring
//! [`Simulation`](crate::Simulation): the only difference is the
//! [`Topology`] (a compiled [`GraphWiring`] instead
//! of the two-port ring table). Scheduler adversaries, channel faults,
//! traces, budgets, and the full [`SimStats`] accounting therefore behave
//! identically on rings and general graphs — the engine-equivalence test in
//! `crates/net/tests` locks that in.
//!
//! `co-core::general` builds a first content-oblivious algorithm on top
//! (the flood-echo wave).

use crate::engine::{
    EngineBatch, EngineStep, EventCore, EventHandler, Observer, RunMetrics, Topology,
};
use crate::faults::{FaultPlan, FaultStats};
use crate::graph::MultiGraph;
use crate::message::Message;
use crate::sched::Scheduler;
use crate::sim::{Budget, RunReport, SimStats};
use crate::trace::Trace;
use std::fmt;
use std::marker::PhantomData;

/// An event-driven node of arbitrary degree.
///
/// The general-graph analogue of [`Protocol`](crate::Protocol): ports are
/// dense indices `0..degree`, assigned per node in edge-insertion order of
/// the underlying [`MultiGraph`].
pub trait GraphProtocol<M: Message> {
    /// The node's decision, if any.
    type Output: Clone + fmt::Debug;

    /// Called once at start-up.
    fn on_start(&mut self, ctx: &mut GraphContext<'_, M>);

    /// Called when a message is delivered to `port`.
    fn on_message(&mut self, port: usize, msg: M, ctx: &mut GraphContext<'_, M>);

    /// Called (batch mode only) to deliver a run of `count` identical
    /// messages in one fused event — the closed form of `count` consecutive
    /// [`GraphProtocol::on_message`] calls for the same `(port, msg)`.
    ///
    /// Same contract as [`Protocol::on_message_run`](crate::Protocol::on_message_run):
    /// return `true` only for an exact closed form that cannot terminate the
    /// node before the run's last pulse; decline (`false`) without mutating
    /// anything otherwise. The default declines, so unbatchable protocols
    /// behave identically under batch mode.
    fn on_message_run(
        &mut self,
        port: usize,
        msg: &M,
        count: u64,
        ctx: &mut GraphRunContext<'_, M>,
    ) -> bool {
        let _ = (port, msg, count, ctx);
        false
    }

    /// Whether the node has terminated (then it ignores all messages).
    fn is_terminated(&self) -> bool {
        false
    }

    /// The node's current output.
    fn output(&self) -> Option<Self::Output>;
}

/// Send capability for [`GraphProtocol`] events.
#[derive(Debug)]
pub struct GraphContext<'a, M: Message> {
    node: usize,
    degree: usize,
    outbox: &'a mut Vec<(usize, M)>,
}

impl<M: Message> GraphContext<'_, M> {
    /// Sends `msg` out of `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree`.
    pub fn send(&mut self, port: usize, msg: M) {
        assert!(port < self.degree, "port {port} out of range");
        self.outbox.push((port, msg));
    }

    /// This node's index.
    #[must_use]
    pub fn node(&self) -> usize {
        self.node
    }

    /// This node's degree (number of ports).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }
}

/// Send buffer handed to [`GraphProtocol::on_message_run`] — the
/// run-compressed sibling of [`GraphContext`].
#[derive(Debug)]
pub struct GraphRunContext<'a, M: Message> {
    node: usize,
    degree: usize,
    outbox: &'a mut Vec<(usize, M, u64)>,
}

impl<M: Message> GraphRunContext<'_, M> {
    /// Sends `count` copies of `msg` out of `port` (a no-op when
    /// `count == 0`).
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree`.
    pub fn send_run(&mut self, port: usize, msg: M, count: u64) {
        assert!(port < self.degree, "port {port} out of range");
        if count > 0 {
            self.outbox.push((port, msg, count));
        }
    }

    /// This node's index.
    #[must_use]
    pub fn node(&self) -> usize {
        self.node
    }

    /// This node's degree (number of ports).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }
}

/// Compiled channel table of a general graph.
#[derive(Clone, Debug)]
pub struct GraphWiring {
    n: usize,
    /// `port_base[v]` = first flat channel index of node `v`'s out-ports;
    /// `port_base[n]` = total channel count.
    port_base: Vec<usize>,
    /// `endpoints[flat]` = destination `(node, port)`.
    endpoints: Vec<(usize, usize)>,
}

impl GraphWiring {
    /// Compiles a multigraph into a channel table. Each undirected edge
    /// becomes one port at each endpoint (two consecutive ports for a
    /// self-loop) and two directed FIFO channels.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no vertices.
    #[must_use]
    pub fn from_graph(graph: &MultiGraph) -> GraphWiring {
        let n = graph.vertex_count();
        assert!(n > 0, "network must have at least one node");
        // Assign ports in edge-insertion order.
        let mut ports: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (peer, peer_port)
        for e in 0..graph.edge_count() {
            let (u, v) = graph.edge(e);
            let pu = ports[u].len();
            let pv = if u == v { pu + 1 } else { ports[v].len() };
            ports[u].push((v, pv));
            if u == v {
                ports[u].push((u, pu));
            } else {
                ports[v].push((u, pu));
            }
        }
        let mut port_base = Vec::with_capacity(n + 1);
        let mut acc = 0;
        for p in &ports {
            port_base.push(acc);
            acc += p.len();
        }
        port_base.push(acc);
        let mut endpoints = vec![(0usize, 0usize); acc];
        for (v, plist) in ports.iter().enumerate() {
            for (p, &(peer, peer_port)) in plist.iter().enumerate() {
                endpoints[port_base[v] + p] = (peer, peer_port);
            }
        }
        GraphWiring {
            n,
            port_base,
            endpoints,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the network is empty (never true for a valid wiring).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Degree of a node.
    #[must_use]
    pub fn degree(&self, node: usize) -> usize {
        self.port_base[node + 1] - self.port_base[node]
    }

    /// Total directed channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        *self.port_base.last().expect("non-empty")
    }

    fn flat(&self, node: usize, port: usize) -> usize {
        debug_assert!(port < self.degree(node));
        self.port_base[node] + port
    }

    /// Destination `(node, port)` of the channel leaving `(node, port)`.
    #[must_use]
    pub fn endpoint(&self, node: usize, port: usize) -> (usize, usize) {
        self.endpoints[self.flat(node, port)]
    }
}

/// The multigraph channel table as seen by the generic event core: node
/// `v`'s ports occupy the flat channel range `port_base[v]..port_base[v+1]`
/// and every channel stores its destination directly.
impl Topology for GraphWiring {
    fn len(&self) -> usize {
        self.n
    }

    fn channel_count(&self) -> usize {
        GraphWiring::channel_count(self)
    }

    fn degree(&self, node: usize) -> usize {
        GraphWiring::degree(self, node)
    }

    fn out_channel(&self, node: usize, port: usize) -> usize {
        self.flat(node, port)
    }

    fn endpoint(&self, channel: usize) -> (usize, usize) {
        self.endpoints[channel]
    }
}

/// How a general-graph run ended (same semantics as
/// [`Outcome`](crate::Outcome)).
pub use crate::sim::Outcome as GraphOutcome;

/// Adapts a `&mut [P]` node slice to the engine's [`EventHandler`].
struct GraphHandler<'a, M: Message, P: GraphProtocol<M>> {
    nodes: &'a mut [P],
    _msg: PhantomData<M>,
}

impl<M: Message, P: GraphProtocol<M>> EventHandler<M> for GraphHandler<'_, M, P> {
    fn on_start(&mut self, node: usize, degree: usize, outbox: &mut Vec<(usize, M)>) {
        let mut ctx = GraphContext {
            node,
            degree,
            outbox,
        };
        self.nodes[node].on_start(&mut ctx);
    }

    fn on_message(
        &mut self,
        node: usize,
        degree: usize,
        port: usize,
        msg: M,
        outbox: &mut Vec<(usize, M)>,
    ) {
        let mut ctx = GraphContext {
            node,
            degree,
            outbox,
        };
        self.nodes[node].on_message(port, msg, &mut ctx);
    }

    fn on_message_run(
        &mut self,
        node: usize,
        degree: usize,
        port: usize,
        msg: &M,
        count: u64,
        run_outbox: &mut Vec<(usize, M, u64)>,
    ) -> bool {
        let mut ctx = GraphRunContext {
            node,
            degree,
            outbox: run_outbox,
        };
        self.nodes[node].on_message_run(port, msg, count, &mut ctx)
    }

    fn is_terminated(&self, node: usize) -> bool {
        self.nodes[node].is_terminated()
    }
}

/// Discrete-event simulation over an arbitrary multigraph.
///
/// Shares every capability of the ring [`Simulation`](crate::Simulation) —
/// faults, traces, run-summary metrics, budget/outcome classification, and
/// full [`SimStats`] — because both are facades over the same
/// [`EventCore`].
pub struct GraphSim<M: Message, P: GraphProtocol<M>> {
    core: EventCore<M, GraphWiring>,
    nodes: Vec<P>,
}

impl<M: Message, P: GraphProtocol<M>> GraphSim<M, P> {
    /// Creates a simulation with one protocol instance per node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the wiring's node count.
    #[must_use]
    pub fn new(
        wiring: GraphWiring,
        nodes: Vec<P>,
        scheduler: Box<dyn Scheduler>,
    ) -> GraphSim<M, P> {
        assert_eq!(nodes.len(), wiring.len(), "one protocol per node");
        GraphSim {
            core: EventCore::new(wiring, scheduler),
            nodes,
        }
    }

    fn handler(nodes: &mut [P]) -> GraphHandler<'_, M, P> {
        GraphHandler {
            nodes,
            _msg: PhantomData,
        }
    }

    /// Installs a plan of model-violating channel faults. Must be called
    /// before the run starts.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.core.set_faults(faults);
    }

    /// Enables or disables the scheduler's O(log C) indexed pick path
    /// (on by default). With it off every step uses the O(ready) scan
    /// `pick`; both paths are pick-for-pick identical.
    pub fn set_indexed_picks(&mut self, enabled: bool) {
        self.core.set_indexed_picks(enabled);
    }

    /// Whether the indexed pick path is being consulted.
    #[must_use]
    pub fn indexed_picks(&self) -> bool {
        self.core.indexed_picks()
    }

    /// Enables or disables run-batched macro-stepping for
    /// [`GraphSim::run`] (off by default) — same semantics and equivalence
    /// guarantees as [`Simulation::set_batch`](crate::Simulation::set_batch).
    pub fn set_batch(&mut self, enabled: bool) {
        self.core.set_batch(enabled);
    }

    /// Whether run-batched macro-stepping is enabled.
    #[must_use]
    pub fn batch_enabled(&self) -> bool {
        self.core.batch_enabled()
    }

    /// Counters of faults actually applied so far.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.core.fault_stats()
    }

    /// Injects a spurious message into the flat channel leaving
    /// `(node, port)`, as forbidden channel noise would.
    pub fn inject(&mut self, node: usize, port: usize, msg: M) {
        let channel = self.core.topology().flat(node, port);
        self.core.inject(channel, msg);
    }

    /// Enables event tracing (unbounded if `cap` is `None`).
    pub fn enable_trace(&mut self, cap: Option<usize>) {
        self.core.enable_trace(cap);
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.core.trace()
    }

    /// Enables the O(1) run-summary metrics collector ([`RunMetrics`]).
    pub fn enable_metrics(&mut self) {
        self.core.enable_metrics();
    }

    /// The collected run metrics, if enabled.
    #[must_use]
    pub fn metrics(&self) -> Option<&RunMetrics> {
        self.core.metrics()
    }

    /// Attaches an engine-level [`Observer`] that sees the raw event stream
    /// for the rest of the run.
    pub fn attach_observer(&mut self, observer: Box<dyn Observer>) {
        self.core.attach_observer(observer);
    }

    /// Runs every `on_start` (idempotent).
    pub fn start(&mut self) {
        let mut handler = Self::handler(&mut self.nodes);
        self.core.start(&mut handler);
    }

    /// Delivers one message; `None` when quiescent.
    pub fn step(&mut self) -> Option<EngineStep> {
        let mut handler = Self::handler(&mut self.nodes);
        self.core.step(&mut handler)
    }

    /// Delivers up to `max_pulses` pulses of one scheduler-picked channel
    /// in a single transition (batches regardless of
    /// [`GraphSim::batch_enabled`]; 1 at every distinguishable boundary).
    pub fn step_batch(&mut self, max_pulses: u64) -> Option<EngineBatch> {
        let mut handler = Self::handler(&mut self.nodes);
        self.core.step_batch(&mut handler, max_pulses)
    }

    /// Runs to quiescence or budget exhaustion.
    pub fn run(&mut self, budget: Budget) -> RunReport {
        let mut handler = Self::handler(&mut self.nodes);
        self.core.run(&mut handler, budget)
    }

    /// Number of messages currently in transit.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.core.in_flight()
    }

    /// Whether no messages are in transit.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.core.is_quiescent()
    }

    /// Whether the given node has terminated.
    #[must_use]
    pub fn is_terminated(&self, node: usize) -> bool {
        self.core.is_terminated(node)
    }

    /// A node's protocol instance.
    #[must_use]
    pub fn node(&self, node: usize) -> &P {
        &self.nodes[node]
    }

    /// All protocol instances, in node order.
    #[must_use]
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// All outputs, in node order.
    #[must_use]
    pub fn outputs(&self) -> Vec<Option<P::Output>> {
        self.nodes.iter().map(GraphProtocol::output).collect()
    }

    /// Aggregate counters.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        self.core.stats()
    }

    /// The compiled channel table.
    #[must_use]
    pub fn wiring(&self) -> &GraphWiring {
        self.core.topology()
    }

    /// Consumes the simulation, returning the protocol instances.
    #[must_use]
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }
}

impl<M: Message, P: GraphProtocol<M> + fmt::Debug> fmt::Debug for GraphSim<M, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GraphSim")
            .field("n", &self.wiring().len())
            .field("in_flight", &self.in_flight())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::FifoScheduler;

    /// Relays the first pulse it sees to all other ports.
    #[derive(Debug)]
    struct FloodOnce {
        source: bool,
        reached: bool,
    }

    impl GraphProtocol<crate::Pulse> for FloodOnce {
        type Output = bool;
        fn on_start(&mut self, ctx: &mut GraphContext<'_, crate::Pulse>) {
            if self.source {
                self.reached = true;
                for p in 0..ctx.degree() {
                    ctx.send(p, crate::Pulse);
                }
            }
        }
        fn on_message(
            &mut self,
            port: usize,
            _m: crate::Pulse,
            ctx: &mut GraphContext<'_, crate::Pulse>,
        ) {
            if !self.reached {
                self.reached = true;
                for p in (0..ctx.degree()).filter(|&p| p != port) {
                    ctx.send(p, crate::Pulse);
                }
            }
        }
        fn output(&self) -> Option<bool> {
            Some(self.reached)
        }
    }

    fn flood(graph: &MultiGraph, source: usize) -> (RunReport, Vec<bool>) {
        let wiring = GraphWiring::from_graph(graph);
        let nodes = (0..graph.vertex_count())
            .map(|v| FloodOnce {
                source: v == source,
                reached: false,
            })
            .collect();
        let mut sim: GraphSim<crate::Pulse, FloodOnce> =
            GraphSim::new(wiring, nodes, Box::new(FifoScheduler::new()));
        let report = sim.run(Budget::steps(1_000_000));
        let reached = (0..graph.vertex_count())
            .map(|v| sim.node(v).reached)
            .collect();
        (report, reached)
    }

    #[test]
    fn flood_reaches_every_node_on_a_ring() {
        let g = MultiGraph::ring(6);
        let (report, reached) = flood(&g, 0);
        assert_eq!(report.outcome, GraphOutcome::Quiescent);
        assert!(reached.iter().all(|&r| r));
    }

    #[test]
    fn flood_reaches_every_node_on_a_theta_graph() {
        let mut g = MultiGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(2, 1);
        g.add_edge(0, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 1);
        let (report, reached) = flood(&g, 3);
        assert_eq!(report.outcome, GraphOutcome::Quiescent);
        assert!(reached.iter().all(|&r| r));
    }

    #[test]
    fn flood_stops_at_components() {
        let mut g = MultiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let (_, reached) = flood(&g, 0);
        assert_eq!(reached, vec![true, true, false, false]);
    }

    #[test]
    fn wiring_degrees_and_endpoints() {
        let mut g = MultiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 0); // self-loop: two ports at node 0
        let w = GraphWiring::from_graph(&g);
        assert_eq!(w.degree(0), 3);
        assert_eq!(w.degree(1), 2);
        assert_eq!(w.degree(2), 1);
        assert_eq!(w.channel_count(), 6);
        // Self-loop ports point at each other.
        assert_eq!(w.endpoint(0, 1), (0, 2));
        assert_eq!(w.endpoint(0, 2), (0, 1));
        // Regular edge round-trips.
        let (v, p) = w.endpoint(1, 1);
        assert_eq!(w.endpoint(v, p), (1, 1));
    }

    #[test]
    fn self_loop_delivery_works() {
        let mut g = MultiGraph::new(1);
        g.add_edge(0, 0);
        let (report, reached) = flood(&g, 0);
        assert_eq!(report.outcome, GraphOutcome::Quiescent);
        assert!(reached[0]);
        assert_eq!(report.total_sent, 2);
    }

    #[test]
    fn graph_sim_has_engine_instrumentation() {
        let g = MultiGraph::ring(4);
        let wiring = GraphWiring::from_graph(&g);
        let nodes = (0..4)
            .map(|v| FloodOnce {
                source: v == 0,
                reached: false,
            })
            .collect();
        let mut sim: GraphSim<crate::Pulse, FloodOnce> =
            GraphSim::new(wiring, nodes, Box::new(FifoScheduler::new()));
        sim.enable_trace(None);
        sim.enable_metrics();
        let report = sim.run(Budget::default());
        let stats = sim.stats();
        assert_eq!(stats.total_sent, report.total_sent);
        assert_eq!(
            stats.total_delivered + stats.delivered_to_terminated,
            report.steps
        );
        let metrics = sim.metrics().expect("metrics enabled");
        assert_eq!(metrics.sends, report.total_sent);
        let trace = sim.trace().expect("trace enabled");
        assert!(!trace.is_empty());
        assert!(sim.is_quiescent());
    }
}
