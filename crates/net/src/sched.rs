//! Adversarial delivery schedulers.
//!
//! In the paper's asynchronous model, channel delays are chosen by an
//! adversary: unbounded but always finite, with per-channel FIFO order.
//! A [`Scheduler`] is that adversary — at every simulation step it picks
//! which non-empty channel delivers its *head* message next (FIFO within a
//! channel is enforced by the simulator itself).
//!
//! Correctness claims in the paper quantify over *all* schedules; the test
//! suites approximate this by running every algorithm under the whole
//! [`SchedulerKind`] family plus many random seeds.

use crate::clock::VirtualClock;
use crate::port::Direction;
use crate::topology::ChannelId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A read-only view of one non-empty channel offered to the scheduler.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ChannelView {
    /// Which channel.
    pub id: ChannelId,
    /// How many messages are queued on it.
    pub queue_len: usize,
    /// Global send sequence number of the head (oldest) message.
    pub head_seq: u64,
    /// Direction tag of the channel, if the topology is a ring.
    pub direction: Option<Direction>,
    /// Virtual arrival time of the head message. Always 0 while the engine
    /// runs without a latency plan (the untimed default), so untimed
    /// schedulers can ignore it.
    pub arrival: u64,
}

/// An incrementally maintained ordered index over the ready set.
///
/// Maps each ready channel to an `Ord` key and keeps the `(key, channel)`
/// pairs in a [`BTreeSet`], so the minimum / maximum / successor ready
/// channel under a scheduler's order is an O(log C) query instead of an
/// O(ready) scan per pick. A parallel `key_of` table remembers each
/// channel's current key, so re-keying and removal need only the channel
/// index — which is all the engine's incremental hooks provide.
///
/// Because every built-in deterministic scheduler keys on `head_seq`
/// (globally unique across channels), the trailing channel index never
/// decides an ordering among simultaneously ready channels; it only makes
/// set elements unique.
#[derive(Clone, Debug)]
pub struct ReadyIndex<K: Ord + Copy> {
    set: BTreeSet<(K, usize)>,
    key_of: Vec<Option<K>>,
}

impl<K: Ord + Copy> Default for ReadyIndex<K> {
    fn default() -> Self {
        ReadyIndex::new()
    }
}

impl<K: Ord + Copy> ReadyIndex<K> {
    /// An empty index.
    #[must_use]
    pub fn new() -> ReadyIndex<K> {
        ReadyIndex {
            set: BTreeSet::new(),
            key_of: Vec::new(),
        }
    }

    /// Inserts `channel` under `key`, replacing any previous key (upsert).
    pub fn insert(&mut self, channel: usize, key: K) {
        if self.key_of.len() <= channel {
            self.key_of.resize(channel + 1, None);
        }
        match self.key_of[channel].replace(key) {
            Some(old) if old == key => {} // already indexed under this key
            Some(old) => {
                self.set.remove(&(old, channel));
                self.set.insert((key, channel));
            }
            None => {
                self.set.insert((key, channel));
            }
        }
    }

    /// Removes `channel` if present.
    pub fn remove(&mut self, channel: usize) {
        if let Some(old) = self.key_of.get_mut(channel).and_then(Option::take) {
            self.set.remove(&(old, channel));
        }
    }

    /// Whether `channel` is currently indexed.
    #[must_use]
    pub fn contains(&self, channel: usize) -> bool {
        self.key_of.get(channel).is_some_and(Option::is_some)
    }

    /// Drops every entry (the channel-capacity table is kept allocated).
    pub fn clear(&mut self) {
        self.set.clear();
        self.key_of.fill(None);
    }

    /// Number of indexed channels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether no channel is indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// The channel with the smallest `(key, channel)` pair.
    #[must_use]
    pub fn first(&self) -> Option<usize> {
        self.set.first().map(|&(_, ch)| ch)
    }

    /// The channel with the largest `(key, channel)` pair.
    #[must_use]
    pub fn last(&self) -> Option<usize> {
        self.set.last().map(|&(_, ch)| ch)
    }

    /// The smallest entry at or after `(key, channel)` — the successor
    /// query behind round-robin cursors.
    #[must_use]
    pub fn first_at_or_after(&self, key: K, channel: usize) -> Option<usize> {
        self.set.range((key, channel)..).next().map(|&(_, ch)| ch)
    }
}

/// The asynchrony adversary: picks which ready channel delivers next.
///
/// Implementations must return an index into `ready` (not a [`ChannelId`]).
/// `ready` is always non-empty, but its *order is unspecified*: the engine
/// maintains it as a dense array updated in place (swap-remove on empty),
/// so positions are an artifact of run history. Deterministic adversaries
/// must therefore pick by channel *identity* — `id`, `head_seq` (globally
/// unique across channels), `queue_len`, `direction` — rather than by array
/// position. Index-based picks (e.g. [`RandomScheduler`]) remain
/// deterministic per run because the engine's array evolution is itself
/// deterministic, but they are not stable under re-orderings.
///
/// Any implementation yields *some* valid asynchronous schedule: per-channel
/// FIFO is enforced by the simulator and every message is eventually
/// delivered as long as the run continues (delays are finite because runs
/// are finite).
pub trait Scheduler: fmt::Debug {
    /// Chooses the next channel to deliver from; returns an index into `ready`.
    fn pick(&mut self, ready: &[ChannelView]) -> usize;

    /// Serializes the scheduler's mutable state as a flat word vector.
    ///
    /// Stateless schedulers return an empty vector (the default). Together
    /// with [`Scheduler::restore_state`] this lets the engine checkpoint and
    /// resume an adversary mid-run without knowing its concrete type —
    /// `Box<dyn Scheduler>` stays object-safe because both methods are
    /// default-bodied.
    fn save_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores state captured by [`Scheduler::save_state`].
    ///
    /// Must accept exactly the vectors its own `save_state` produces;
    /// the default (for stateless schedulers) ignores the input.
    fn restore_state(&mut self, _state: &[u64]) {}

    /// Picks the next channel *by identity* from the scheduler's
    /// incrementally maintained index, if it keeps one.
    ///
    /// `None` means "no index — show me the ready slice": the engine falls
    /// back to [`Scheduler::pick`]. An implementation returning `Some(id)`
    /// must name a currently ready channel and must choose exactly the
    /// channel its own `pick` would have chosen on the same ready set — the
    /// property suite in `tests/sched_index_equivalence.rs` holds every
    /// built-in index to that contract. Implementations with per-pick side
    /// effects (cursors, phase counters) must apply them here exactly as in
    /// `pick`: the engine calls only one of the two per step.
    fn indexed_pick(&mut self) -> Option<ChannelId> {
        None
    }

    /// A channel became ready: its queue went from empty to non-empty.
    ///
    /// Driven by the engine on every enqueue into an empty channel
    /// (including fault injections), before the next pick. The default — for
    /// scan-only adversaries — ignores it.
    fn on_ready(&mut self, view: ChannelView) {
        let _ = view;
    }

    /// A ready channel's view changed in place: its head advanced after a
    /// delivery left messages queued, or its queue grew on enqueue. Fired
    /// for *any* in-place `head_seq`/`queue_len` change, so indexes keyed on
    /// either stay current.
    fn on_head_change(&mut self, view: ChannelView) {
        let _ = view;
    }

    /// A channel stopped being ready: its queue drained to empty.
    fn on_unready(&mut self, id: ChannelId) {
        let _ = id;
    }

    /// Rebuilds the incremental index from scratch from the full ready set.
    ///
    /// Called by the engine after a snapshot restore or a scheduler swap, so
    /// indexes never need to appear in [`Scheduler::save_state`] layouts or
    /// `CoreSnapshot`s — they are derived state. The default (scan-only
    /// schedulers) does nothing.
    fn rebuild_index(&mut self, ready: &[ChannelView]) {
        let _ = ready;
    }

    /// How many pulses of `picked`'s head run this scheduler is *provably*
    /// going to pick consecutively, given that the channel it just picked
    /// holds a head run of `run_len` consecutive sequence numbers.
    ///
    /// Returning `q > 1` asserts: for any state the engine can reach by
    /// delivering the first `q − 1` of those pulses — including new enqueues
    /// triggered by the deliveries, which always carry sequence numbers
    /// larger than every seq in the run — this scheduler's next pick would
    /// again be `picked.id`. (For the FIFO family this holds because the
    /// head run's consecutive seqs occupy *all* seqs below any other
    /// channel's head.) The engine clamps the answer to the actual run
    /// length, the remaining pulse budget, and its own boundary conditions.
    ///
    /// Must not itself mutate state — the committed fused count arrives via
    /// [`Scheduler::note_batch`]. The default (`1`) keeps any scheduler
    /// without a proof on exact per-pulse stepping.
    fn batch_quota(&mut self, picked: ChannelView, run_len: u64) -> u64 {
        let _ = (picked, run_len);
        1
    }

    /// The engine fused `count ≥ 2` deliveries of `id` under the single
    /// pick that preceded this call. Schedulers with per-pick side effects
    /// (script cursors, recorded logs) account for the `count − 1` picks
    /// their `pick`/`indexed_pick` never saw; the default does nothing.
    fn note_batch(&mut self, id: ChannelId, count: u64) {
        let _ = (id, count);
    }
}

/// Globally FIFO: always delivers the oldest in-flight message.
///
/// This is the "synchronous-looking" schedule and also the canonical
/// scheduler of the paper's Definition 21 (solitude patterns) when combined
/// with its CW-first tie-break — see [`SolitudeScheduler`].
///
/// ```rust
/// use co_net::sched::{FifoScheduler, Scheduler};
/// use co_net::{ChannelId, ChannelView};
///
/// let ready = [
///     ChannelView { id: ChannelId::from_index(0), queue_len: 1, head_seq: 9, direction: None, arrival: 0 },
///     ChannelView { id: ChannelId::from_index(1), queue_len: 1, head_seq: 2, direction: None, arrival: 0 },
/// ];
/// assert_eq!(FifoScheduler::new().pick(&ready), 1); // oldest send first
/// ```
#[derive(Clone, Debug, Default)]
pub struct FifoScheduler {
    index: ReadyIndex<u64>,
}

impl FifoScheduler {
    /// Creates a new FIFO scheduler.
    #[must_use]
    pub fn new() -> FifoScheduler {
        FifoScheduler::default()
    }
}

impl Scheduler for FifoScheduler {
    fn pick(&mut self, ready: &[ChannelView]) -> usize {
        ready
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| v.head_seq)
            .map(|(i, _)| i)
            .expect("ready is non-empty")
    }

    fn indexed_pick(&mut self) -> Option<ChannelId> {
        self.index.first().map(ChannelId::from_index)
    }

    fn on_ready(&mut self, view: ChannelView) {
        self.index.insert(view.id.index(), view.head_seq);
    }

    fn on_head_change(&mut self, view: ChannelView) {
        self.index.insert(view.id.index(), view.head_seq);
    }

    fn on_unready(&mut self, id: ChannelId) {
        self.index.remove(id.index());
    }

    fn rebuild_index(&mut self, ready: &[ChannelView]) {
        self.index.clear();
        for v in ready {
            self.index.insert(v.id.index(), v.head_seq);
        }
    }

    fn batch_quota(&mut self, picked: ChannelView, run_len: u64) -> u64 {
        // The picked channel won with the globally minimal head seq, and its
        // head run holds `run_len` *consecutive* seqs — globally unique, so
        // every other channel's head (and every future send) is larger than
        // the whole run. FIFO repicks this channel until the run is spent.
        let _ = picked;
        run_len
    }
}

/// The canonical scheduler of Definition 21: delivers messages one by one in
/// the order they were sent, breaking ties by prioritising clockwise pulses.
///
/// Ties can only occur between messages sent during the same event; the
/// direction tag orders those (CW before CCW, untagged last).
#[derive(Clone, Debug, Default)]
pub struct SolitudeScheduler {
    index: ReadyIndex<(u64, u8)>,
}

/// CW before CCW, untagged last — the Definition-21 tie-break order.
fn dir_rank(direction: Option<Direction>) -> u8 {
    match direction {
        Some(Direction::Cw) => 0,
        Some(Direction::Ccw) => 1,
        None => 2,
    }
}

impl SolitudeScheduler {
    /// Creates the canonical Definition-21 scheduler.
    #[must_use]
    pub fn new() -> SolitudeScheduler {
        SolitudeScheduler::default()
    }
}

impl Scheduler for SolitudeScheduler {
    fn pick(&mut self, ready: &[ChannelView]) -> usize {
        ready
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| (v.head_seq, dir_rank(v.direction)))
            .map(|(i, _)| i)
            .expect("ready is non-empty")
    }

    fn indexed_pick(&mut self) -> Option<ChannelId> {
        self.index.first().map(ChannelId::from_index)
    }

    fn on_ready(&mut self, view: ChannelView) {
        self.index
            .insert(view.id.index(), (view.head_seq, dir_rank(view.direction)));
    }

    fn on_head_change(&mut self, view: ChannelView) {
        self.index
            .insert(view.id.index(), (view.head_seq, dir_rank(view.direction)));
    }

    fn on_unready(&mut self, id: ChannelId) {
        self.index.remove(id.index());
    }

    fn rebuild_index(&mut self, ready: &[ChannelView]) {
        self.index.clear();
        for v in ready {
            self.index
                .insert(v.id.index(), (v.head_seq, dir_rank(v.direction)));
        }
    }

    fn batch_quota(&mut self, picked: ChannelView, run_len: u64) -> u64 {
        // Seq-first ordering with a direction tie-break: ties require equal
        // head seqs, which are globally unique, so the FIFO run argument
        // applies unchanged.
        let _ = picked;
        run_len
    }
}

/// Adversarially anti-FIFO: always delivers the *youngest* head message,
/// maximally delaying old messages (while respecting per-channel FIFO).
#[derive(Clone, Debug, Default)]
pub struct LifoScheduler {
    index: ReadyIndex<u64>,
}

impl LifoScheduler {
    /// Creates a new anti-FIFO scheduler.
    #[must_use]
    pub fn new() -> LifoScheduler {
        LifoScheduler::default()
    }
}

impl Scheduler for LifoScheduler {
    fn pick(&mut self, ready: &[ChannelView]) -> usize {
        ready
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| v.head_seq)
            .map(|(i, _)| i)
            .expect("ready is non-empty")
    }

    fn indexed_pick(&mut self) -> Option<ChannelId> {
        self.index.last().map(ChannelId::from_index)
    }

    fn on_ready(&mut self, view: ChannelView) {
        self.index.insert(view.id.index(), view.head_seq);
    }

    fn on_head_change(&mut self, view: ChannelView) {
        self.index.insert(view.id.index(), view.head_seq);
    }

    fn on_unready(&mut self, id: ChannelId) {
        self.index.remove(id.index());
    }

    fn rebuild_index(&mut self, ready: &[ChannelView]) {
        self.index.clear();
        for v in ready {
            self.index.insert(v.id.index(), v.head_seq);
        }
    }
}

/// Uniformly random delivery, seeded for reproducibility.
///
/// The one built-in adversary that picks by array *position* rather than
/// channel identity, so it keeps no [`ReadyIndex`]: its `indexed_pick`
/// stays `None` and the engine always shows it the ready slice.
///
/// ```rust
/// use co_net::sched::{RandomScheduler, Scheduler};
/// use co_net::{ChannelId, ChannelView};
///
/// let ready = [
///     ChannelView { id: ChannelId::from_index(0), queue_len: 1, head_seq: 0, direction: None, arrival: 0 },
///     ChannelView { id: ChannelId::from_index(1), queue_len: 1, head_seq: 1, direction: None, arrival: 0 },
/// ];
/// let mut a = RandomScheduler::seeded(7);
/// let mut b = RandomScheduler::seeded(7);
/// // Same seed, same schedule — adversaries are reproducible.
/// assert_eq!(a.pick(&ready), b.pick(&ready));
/// ```
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler from a seed.
    #[must_use]
    pub fn seeded(seed: u64) -> RandomScheduler {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, ready: &[ChannelView]) -> usize {
        self.rng.gen_range(0..ready.len())
    }

    fn save_state(&self) -> Vec<u64> {
        self.rng.to_state().to_vec()
    }

    fn restore_state(&mut self, state: &[u64]) {
        let words: [u64; 4] = state.try_into().expect("RandomScheduler state is 4 words");
        self.rng = StdRng::from_state(words);
    }
}

/// Round-robin over channel indices: fair but staggered delivery.
#[derive(Clone, Debug, Default)]
pub struct RoundRobinScheduler {
    cursor: usize,
    /// Ready channels ordered by index alone — the key carries no
    /// information, so the set is ordered by channel and the cursor's
    /// successor is one range query.
    index: ReadyIndex<()>,
}

impl RoundRobinScheduler {
    /// Creates a new round-robin scheduler.
    #[must_use]
    pub fn new() -> RoundRobinScheduler {
        RoundRobinScheduler::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn pick(&mut self, ready: &[ChannelView]) -> usize {
        // Deliver from the lowest-indexed ready channel at or past the
        // cursor, wrapping to the lowest overall; then advance the cursor
        // past it. Keyed on channel index, not array position, so the pick
        // is independent of the ready array's order.
        let cursor = self.cursor;
        let pick = ready
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| (v.id.index() < cursor, v.id.index()))
            .map(|(i, _)| i)
            .expect("ready is non-empty");
        self.cursor = ready[pick].id.index() + 1;
        pick
    }

    fn indexed_pick(&mut self) -> Option<ChannelId> {
        let next = self
            .index
            .first_at_or_after((), self.cursor)
            .or_else(|| self.index.first())?;
        self.cursor = next + 1;
        Some(ChannelId::from_index(next))
    }

    fn on_ready(&mut self, view: ChannelView) {
        self.index.insert(view.id.index(), ());
    }

    fn on_unready(&mut self, id: ChannelId) {
        self.index.remove(id.index());
    }

    fn rebuild_index(&mut self, ready: &[ChannelView]) {
        self.index.clear();
        for v in ready {
            self.index.insert(v.id.index(), ());
        }
    }

    fn save_state(&self) -> Vec<u64> {
        vec![self.cursor as u64]
    }

    fn restore_state(&mut self, state: &[u64]) {
        self.cursor = state[0] as usize;
    }
}

/// Starves one direction: messages travelling `starved` are delivered only
/// when no other channel is ready.
///
/// This is the adversary that maximally desynchronises the paper's two
/// parallel executions of Algorithm 1 (Algorithms 2 and 3): one direction
/// races arbitrarily far ahead of the other.
#[derive(Clone, Debug)]
pub struct StarveDirectionScheduler {
    starved: Direction,
    /// Channels not travelling the starved direction, FIFO by head seq.
    preferred: ReadyIndex<u64>,
    /// Channels travelling the starved direction — drained only when
    /// `preferred` is empty.
    deferred: ReadyIndex<u64>,
}

impl StarveDirectionScheduler {
    /// Creates a scheduler that starves the given direction.
    #[must_use]
    pub fn new(starved: Direction) -> StarveDirectionScheduler {
        StarveDirectionScheduler {
            starved,
            preferred: ReadyIndex::new(),
            deferred: ReadyIndex::new(),
        }
    }

    fn tier(&mut self, direction: Option<Direction>) -> &mut ReadyIndex<u64> {
        if direction == Some(self.starved) {
            &mut self.deferred
        } else {
            &mut self.preferred
        }
    }
}

impl Scheduler for StarveDirectionScheduler {
    fn pick(&mut self, ready: &[ChannelView]) -> usize {
        ready
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| {
                let starved = v.direction == Some(self.starved);
                (starved, v.head_seq)
            })
            .map(|(i, _)| i)
            .expect("ready is non-empty")
    }

    fn indexed_pick(&mut self) -> Option<ChannelId> {
        self.preferred
            .first()
            .or_else(|| self.deferred.first())
            .map(ChannelId::from_index)
    }

    fn on_ready(&mut self, view: ChannelView) {
        self.tier(view.direction)
            .insert(view.id.index(), view.head_seq);
    }

    fn on_head_change(&mut self, view: ChannelView) {
        // A channel's direction never changes, so the upsert lands in the
        // same tier the channel was registered in.
        self.tier(view.direction)
            .insert(view.id.index(), view.head_seq);
    }

    fn on_unready(&mut self, id: ChannelId) {
        self.preferred.remove(id.index());
        self.deferred.remove(id.index());
    }

    fn rebuild_index(&mut self, ready: &[ChannelView]) {
        self.preferred.clear();
        self.deferred.clear();
        for v in ready {
            self.tier(v.direction).insert(v.id.index(), v.head_seq);
        }
    }

    fn batch_quota(&mut self, picked: ChannelView, run_len: u64) -> u64 {
        // A preferred-tier winner (minimal head seq among non-starved
        // channels) keeps winning for its whole run: mid-run enqueues carry
        // larger seqs, and a channel never changes tier. A deferred-tier
        // pick only happened because `preferred` was empty — mid-run sends
        // could repopulate it, so the starved tier stays per-pulse.
        if picked.direction == Some(self.starved) {
            1
        } else {
            run_len
        }
    }
}

/// Starves a single node: channels *toward* the victim deliver only when
/// nothing else is ready, simulating one maximally slow process.
#[derive(Clone, Debug)]
pub struct StarveNodeScheduler {
    victim: usize,
    /// Channels toward the victim, hashed once in `new` so the per-candidate
    /// membership test is O(1) instead of an O(victims) `Vec::contains`.
    victims_channels: HashSet<ChannelId>,
    /// Channels not aimed at the victim, FIFO by head seq.
    preferred: ReadyIndex<u64>,
    /// Channels toward the victim — drained only when `preferred` is empty.
    deferred: ReadyIndex<u64>,
}

impl StarveNodeScheduler {
    /// Creates a scheduler starving deliveries to node `victim`.
    ///
    /// `incoming` must list the channels whose endpoint is the victim (the
    /// simulator's [`crate::Wiring`] provides this).
    #[must_use]
    pub fn new(victim: usize, incoming: Vec<ChannelId>) -> StarveNodeScheduler {
        StarveNodeScheduler {
            victim,
            victims_channels: incoming.into_iter().collect(),
            preferred: ReadyIndex::new(),
            deferred: ReadyIndex::new(),
        }
    }

    /// The starved node.
    #[must_use]
    pub fn victim(&self) -> usize {
        self.victim
    }

    fn tier(&mut self, id: ChannelId) -> &mut ReadyIndex<u64> {
        if self.victims_channels.contains(&id) {
            &mut self.deferred
        } else {
            &mut self.preferred
        }
    }
}

impl Scheduler for StarveNodeScheduler {
    fn pick(&mut self, ready: &[ChannelView]) -> usize {
        ready
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| {
                let starved = self.victims_channels.contains(&v.id);
                (starved, v.head_seq)
            })
            .map(|(i, _)| i)
            .expect("ready is non-empty")
    }

    fn indexed_pick(&mut self) -> Option<ChannelId> {
        self.preferred
            .first()
            .or_else(|| self.deferred.first())
            .map(ChannelId::from_index)
    }

    fn on_ready(&mut self, view: ChannelView) {
        self.tier(view.id).insert(view.id.index(), view.head_seq);
    }

    fn on_head_change(&mut self, view: ChannelView) {
        self.tier(view.id).insert(view.id.index(), view.head_seq);
    }

    fn on_unready(&mut self, id: ChannelId) {
        self.preferred.remove(id.index());
        self.deferred.remove(id.index());
    }

    fn rebuild_index(&mut self, ready: &[ChannelView]) {
        self.preferred.clear();
        self.deferred.clear();
        for v in ready {
            self.tier(v.id).insert(v.id.index(), v.head_seq);
        }
    }

    fn batch_quota(&mut self, picked: ChannelView, run_len: u64) -> u64 {
        // Same two-tier argument as `StarveDirectionScheduler`: a
        // preferred-tier winner holds for the whole run; a pick from the
        // starved tier stays per-pulse.
        if self.victims_channels.contains(&picked.id) {
            1
        } else {
            run_len
        }
    }
}

/// Drains the longest queue first — a bursty, congestion-like schedule.
#[derive(Clone, Debug, Default)]
pub struct LongestQueueScheduler {
    /// Keyed on `(queue_len, Reverse(head_seq))` so the set's maximum is the
    /// longest queue, oldest head on ties — exactly the scan's `max_by_key`.
    /// `on_head_change` re-keys on every in-place view change, which covers
    /// both queue growth (enqueue) and head advance (partial drain).
    index: ReadyIndex<(usize, Reverse<u64>)>,
}

impl LongestQueueScheduler {
    /// Creates a new longest-queue-first scheduler.
    #[must_use]
    pub fn new() -> LongestQueueScheduler {
        LongestQueueScheduler::default()
    }
}

impl Scheduler for LongestQueueScheduler {
    fn pick(&mut self, ready: &[ChannelView]) -> usize {
        ready
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| (v.queue_len, Reverse(v.head_seq)))
            .map(|(i, _)| i)
            .expect("ready is non-empty")
    }

    fn indexed_pick(&mut self) -> Option<ChannelId> {
        self.index.last().map(ChannelId::from_index)
    }

    fn on_ready(&mut self, view: ChannelView) {
        self.index
            .insert(view.id.index(), (view.queue_len, Reverse(view.head_seq)));
    }

    fn on_head_change(&mut self, view: ChannelView) {
        self.index
            .insert(view.id.index(), (view.queue_len, Reverse(view.head_seq)));
    }

    fn on_unready(&mut self, id: ChannelId) {
        self.index.remove(id.index());
    }

    fn rebuild_index(&mut self, ready: &[ChannelView]) {
        self.index.clear();
        for v in ready {
            self.index
                .insert(v.id.index(), (v.queue_len, Reverse(v.head_seq)));
        }
    }
}

/// Realistic-time delivery: the earliest-arriving head message goes first.
///
/// This is the scheduler that makes the virtual clock *mean* something:
/// under a latency plan, every queued message carries an arrival timestamp,
/// and `LatencyScheduler` delivers in timestamp order — the schedule a real
/// network with those link latencies would produce. Ties (equal arrivals,
/// ubiquitous under the zero-latency default where every arrival is 0) are
/// broken by `head_seq`, so without a latency plan this degenerates to
/// exactly the [`FifoScheduler`] schedule.
///
/// Like the FIFO family it keeps a [`ReadyIndex`], keyed on
/// `(arrival, head_seq)`, so picks stay O(log C).
#[derive(Clone, Debug, Default)]
pub struct LatencyScheduler {
    index: ReadyIndex<(u64, u64)>,
}

impl LatencyScheduler {
    /// Creates a new earliest-arrival scheduler.
    #[must_use]
    pub fn new() -> LatencyScheduler {
        LatencyScheduler::default()
    }
}

impl Scheduler for LatencyScheduler {
    fn pick(&mut self, ready: &[ChannelView]) -> usize {
        ready
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| (v.arrival, v.head_seq))
            .map(|(i, _)| i)
            .expect("ready is non-empty")
    }

    fn indexed_pick(&mut self) -> Option<ChannelId> {
        self.index.first().map(ChannelId::from_index)
    }

    fn on_ready(&mut self, view: ChannelView) {
        self.index
            .insert(view.id.index(), (view.arrival, view.head_seq));
    }

    fn on_head_change(&mut self, view: ChannelView) {
        self.index
            .insert(view.id.index(), (view.arrival, view.head_seq));
    }

    fn on_unready(&mut self, id: ChannelId) {
        self.index.remove(id.index());
    }

    fn rebuild_index(&mut self, ready: &[ChannelView]) {
        self.index.clear();
        for v in ready {
            self.index.insert(v.id.index(), (v.arrival, v.head_seq));
        }
    }

    fn batch_quota(&mut self, picked: ChannelView, run_len: u64) -> u64 {
        // The engine only batches in untimed runs, where every arrival is 0
        // and this scheduler degenerates to exact FIFO — the run argument
        // applies. (Under a latency plan the engine forces per-pulse before
        // ever asking.)
        let _ = picked;
        run_len
    }
}

/// Partial synchrony: adversarial (seeded-random) delivery, but no message
/// may be overtaken more than `bound` times — once the head of a channel
/// has waited through `bound` picks, it is delivered next.
///
/// The paper's asynchronous model allows unbounded (finite) delays;
/// `BoundedDelayScheduler` interpolates between fully synchronous
/// (`bound = 0`, which degenerates to FIFO) and nearly unconstrained
/// adversaries, and is used to study how schedule skew affects *time*-like
/// metrics even though message complexity stays fixed.
#[derive(Clone, Debug)]
pub struct BoundedDelayScheduler {
    bound: u64,
    rng: StdRng,
    /// The adversary's private virtual clock: one tick per pick. Deadlines
    /// are expressed in this clock's time; its current value serializes as
    /// word 0 of [`Scheduler::save_state`], byte-compatible with the step
    /// counter it replaced.
    clock: VirtualClock,
    /// `deadline[channel] = clock time by which its head must deliver`.
    deadlines: HashMap<ChannelId, u64>,
    /// Mirror of `deadlines` ordered by `(deadline, channel)`, so the
    /// overdue lookup is a peek at the minimum instead of a map scan. Purely
    /// derived — rebuilt on restore, absent from the serialized layout.
    by_deadline: BTreeSet<(u64, usize)>,
}

impl BoundedDelayScheduler {
    /// Creates a scheduler that delays no head message by more than
    /// `bound` deliveries.
    #[must_use]
    pub fn new(bound: u64, seed: u64) -> BoundedDelayScheduler {
        BoundedDelayScheduler {
            bound,
            rng: StdRng::seed_from_u64(seed),
            clock: VirtualClock::new(),
            deadlines: HashMap::new(),
            by_deadline: BTreeSet::new(),
        }
    }

    fn forget(&mut self, id: ChannelId) {
        if let Some(d) = self.deadlines.remove(&id) {
            self.by_deadline.remove(&(d, id.index()));
        }
    }
}

impl Scheduler for BoundedDelayScheduler {
    fn pick(&mut self, ready: &[ChannelView]) -> usize {
        let now = self.clock.tick();
        let bound = self.bound;
        // Register deadlines for newly seen heads. Entries for channels this
        // adversary delivered were removed at that pick, so under engine use
        // the map holds only ready channels; entries made stale by
        // out-of-band deliveries (`step_channel`, scheduler swaps) are
        // dropped lazily during the overdue lookup below instead of an
        // O(ready) `retain` sweep on every pick.
        for v in ready {
            if let std::collections::hash_map::Entry::Vacant(e) = self.deadlines.entry(v.id) {
                e.insert(now + bound);
                self.by_deadline.insert((now + bound, v.id.index()));
            }
        }
        // Deliver any overdue head first (oldest deadline; ties broken by
        // channel index so the pick never depends on map iteration order).
        while let Some(&(deadline, ch)) = self.by_deadline.first() {
            if deadline > now {
                break;
            }
            let id = ChannelId::from_index(ch);
            self.by_deadline.pop_first();
            self.deadlines.remove(&id);
            if let Some(at) = ready.iter().position(|v| v.id == id) {
                return at;
            }
            // Stale: the channel drained without this adversary picking it.
        }
        let at = self.rng.gen_range(0..ready.len());
        self.forget(ready[at].id);
        at
    }

    fn save_state(&self) -> Vec<u64> {
        // Layout: clock, rng[0..4], then (channel, deadline) pairs sorted by
        // channel so the serialized form is deterministic. Word 0 predates
        // the `VirtualClock` (it was a raw pick counter) and the layout is
        // pinned byte-for-byte by `bounded_delay_save_layout_is_unchanged`;
        // the `by_deadline` mirror is derived state and never serialized.
        let mut state = vec![self.clock.now()];
        state.extend(self.rng.to_state());
        let mut pairs: Vec<(u64, u64)> = self
            .deadlines
            .iter()
            .map(|(id, &d)| (id.index() as u64, d))
            .collect();
        pairs.sort_unstable();
        for (id, d) in pairs {
            state.push(id);
            state.push(d);
        }
        state
    }

    fn restore_state(&mut self, state: &[u64]) {
        self.clock.set(state[0]);
        let words: [u64; 4] = state[1..5]
            .try_into()
            .expect("BoundedDelayScheduler rng state is 4 words");
        self.rng = StdRng::from_state(words);
        self.deadlines = state[5..]
            .chunks_exact(2)
            .map(|pair| (ChannelId::from_index(pair[0] as usize), pair[1]))
            .collect();
        self.by_deadline = self
            .deadlines
            .iter()
            .map(|(id, &d)| (d, id.index()))
            .collect();
    }
}

/// Replays an explicit schedule: at each step, delivers from the recorded
/// [`ChannelId`] if it is ready, falling back to FIFO otherwise (and after
/// the recording is exhausted).
///
/// Combined with [`RecordingScheduler`], this reproduces any previously
/// observed execution exactly — the tool behind regression-pinning an
/// adversarial interleaving.
#[derive(Clone, Debug)]
pub struct ReplayScheduler {
    script: Vec<ChannelId>,
    cursor: usize,
    /// FIFO index over the ready set: one O(1) membership probe for the
    /// scripted pick plus an O(log C) oldest-head fallback, replacing the
    /// two O(ready) scans (and the fresh `FifoScheduler` allocation) the
    /// scan path needs per fallback.
    fifo: ReadyIndex<u64>,
}

impl ReplayScheduler {
    /// Creates a scheduler replaying `script`.
    #[must_use]
    pub fn new(script: Vec<ChannelId>) -> ReplayScheduler {
        ReplayScheduler {
            script,
            cursor: 0,
            fifo: ReadyIndex::new(),
        }
    }

    /// How many scripted picks have been consumed.
    #[must_use]
    pub fn consumed(&self) -> usize {
        self.cursor
    }
}

impl Scheduler for ReplayScheduler {
    fn pick(&mut self, ready: &[ChannelView]) -> usize {
        if let Some(&want) = self.script.get(self.cursor) {
            self.cursor += 1;
            if let Some(at) = ready.iter().position(|v| v.id == want) {
                return at;
            }
        }
        // FIFO fallback, inline: oldest head first.
        ready
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| v.head_seq)
            .map(|(i, _)| i)
            .expect("ready is non-empty")
    }

    fn indexed_pick(&mut self) -> Option<ChannelId> {
        // Resolve the fallback before consuming a script entry: if the
        // index is unexpectedly empty the engine must retry via the scan
        // path with the script position untouched.
        let fallback = self.fifo.first().map(ChannelId::from_index)?;
        if let Some(&want) = self.script.get(self.cursor) {
            self.cursor += 1;
            if self.fifo.contains(want.index()) {
                return Some(want);
            }
        }
        Some(fallback)
    }

    fn on_ready(&mut self, view: ChannelView) {
        self.fifo.insert(view.id.index(), view.head_seq);
    }

    fn on_head_change(&mut self, view: ChannelView) {
        self.fifo.insert(view.id.index(), view.head_seq);
    }

    fn on_unready(&mut self, id: ChannelId) {
        self.fifo.remove(id.index());
    }

    fn rebuild_index(&mut self, ready: &[ChannelView]) {
        self.fifo.clear();
        for v in ready {
            self.fifo.insert(v.id.index(), v.head_seq);
        }
    }

    fn save_state(&self) -> Vec<u64> {
        vec![self.cursor as u64]
    }

    fn restore_state(&mut self, state: &[u64]) {
        self.cursor = state[0] as usize;
    }

    fn batch_quota(&mut self, picked: ChannelView, run_len: u64) -> u64 {
        // Past the script's end the fallback is pure FIFO: full run. Within
        // the script, fuse exactly the prefix of consecutive scripted picks
        // naming this channel (the pick that led here already consumed one
        // entry, hence `1 +`). The cursor itself moves in `note_batch`.
        if self.cursor >= self.script.len() {
            return run_len;
        }
        let scripted = self.script[self.cursor..]
            .iter()
            .take_while(|&&want| want == picked.id)
            .count() as u64;
        (1 + scripted).min(run_len)
    }

    fn note_batch(&mut self, _id: ChannelId, count: u64) {
        // The pick consumed one script entry; the other `count − 1` fused
        // pulses consume theirs here (they were verified equal to `id` in
        // `batch_quota`, or lie past the script's end).
        self.cursor = (self.cursor + (count - 1) as usize).min(self.script.len());
    }
}

/// Wraps another scheduler and records every picked [`ChannelId`] into a
/// shared log, for later replay with [`ReplayScheduler`].
#[derive(Debug)]
pub struct RecordingScheduler {
    inner: Box<dyn Scheduler>,
    log: std::rc::Rc<std::cell::RefCell<Vec<ChannelId>>>,
}

impl RecordingScheduler {
    /// Wraps `inner`; returns the scheduler and a handle to the growing log.
    #[must_use]
    pub fn new(
        inner: Box<dyn Scheduler>,
    ) -> (
        RecordingScheduler,
        std::rc::Rc<std::cell::RefCell<Vec<ChannelId>>>,
    ) {
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        (
            RecordingScheduler {
                inner,
                log: std::rc::Rc::clone(&log),
            },
            log,
        )
    }
}

impl Scheduler for RecordingScheduler {
    fn pick(&mut self, ready: &[ChannelView]) -> usize {
        let at = self.inner.pick(ready);
        self.log.borrow_mut().push(ready[at].id);
        at
    }

    fn indexed_pick(&mut self) -> Option<ChannelId> {
        let id = self.inner.indexed_pick()?;
        self.log.borrow_mut().push(id);
        Some(id)
    }

    fn on_ready(&mut self, view: ChannelView) {
        self.inner.on_ready(view);
    }

    fn on_head_change(&mut self, view: ChannelView) {
        self.inner.on_head_change(view);
    }

    fn on_unready(&mut self, id: ChannelId) {
        self.inner.on_unready(id);
    }

    fn rebuild_index(&mut self, ready: &[ChannelView]) {
        self.inner.rebuild_index(ready);
    }

    fn save_state(&self) -> Vec<u64> {
        // The log is shared (and append-only), so only the inner adversary's
        // state needs capturing.
        self.inner.save_state()
    }

    fn restore_state(&mut self, state: &[u64]) {
        self.inner.restore_state(state);
    }

    fn batch_quota(&mut self, picked: ChannelView, run_len: u64) -> u64 {
        self.inner.batch_quota(picked, run_len)
    }

    fn note_batch(&mut self, id: ChannelId, count: u64) {
        // One logged pick per pulse (the pick itself logged the first), so
        // recordings stay byte-exact with per-pulse runs.
        {
            let mut log = self.log.borrow_mut();
            for _ in 1..count {
                log.push(id);
            }
        }
        self.inner.note_batch(id, count);
    }
}

/// Switches from one adversary to another after a fixed number of
/// deliveries — e.g. FIFO while the CW instance races ahead, then LIFO to
/// torture the CCW tail.
#[derive(Debug)]
pub struct PhaseSwitchScheduler {
    first: Box<dyn Scheduler>,
    second: Box<dyn Scheduler>,
    switch_after: u64,
    delivered: u64,
}

impl PhaseSwitchScheduler {
    /// Uses `first` for the first `switch_after` deliveries, `second` after.
    #[must_use]
    pub fn new(
        first: Box<dyn Scheduler>,
        second: Box<dyn Scheduler>,
        switch_after: u64,
    ) -> PhaseSwitchScheduler {
        PhaseSwitchScheduler {
            first,
            second,
            switch_after,
            delivered: 0,
        }
    }
}

impl Scheduler for PhaseSwitchScheduler {
    fn pick(&mut self, ready: &[ChannelView]) -> usize {
        let pick = if self.delivered < self.switch_after {
            self.first.pick(ready)
        } else {
            self.second.pick(ready)
        };
        self.delivered += 1;
        pick
    }

    fn indexed_pick(&mut self) -> Option<ChannelId> {
        let active = if self.delivered < self.switch_after {
            &mut self.first
        } else {
            &mut self.second
        };
        // Count the delivery only if the active child answers by index;
        // on `None` the engine falls back to `pick`, which counts it.
        let id = active.indexed_pick()?;
        self.delivered += 1;
        Some(id)
    }

    fn on_ready(&mut self, view: ChannelView) {
        self.first.on_ready(view);
        self.second.on_ready(view);
    }

    fn on_head_change(&mut self, view: ChannelView) {
        self.first.on_head_change(view);
        self.second.on_head_change(view);
    }

    fn on_unready(&mut self, id: ChannelId) {
        self.first.on_unready(id);
        self.second.on_unready(id);
    }

    fn rebuild_index(&mut self, ready: &[ChannelView]) {
        self.first.rebuild_index(ready);
        self.second.rebuild_index(ready);
    }

    fn save_state(&self) -> Vec<u64> {
        // Layout: delivered, len(first-state), first-state..., second-state...
        let first = self.first.save_state();
        let mut state = vec![self.delivered, first.len() as u64];
        state.extend(first);
        state.extend(self.second.save_state());
        state
    }

    fn restore_state(&mut self, state: &[u64]) {
        self.delivered = state[0];
        let first_len = state[1] as usize;
        self.first.restore_state(&state[2..2 + first_len]);
        self.second.restore_state(&state[2 + first_len..]);
    }
}

/// Enumerable family of schedulers used by the test and bench harnesses.
///
/// Iterate [`SchedulerKind::ALL`] to quantify a test over a representative
/// set of adversaries:
///
/// ```rust
/// use co_net::SchedulerKind;
///
/// for kind in SchedulerKind::ALL {
///     let mut scheduler = kind.build(42);
///     // ... hand `scheduler` to a Simulation ...
/// #   let _ = &mut scheduler;
/// }
/// assert_eq!(SchedulerKind::ALL.len(), 8);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Globally FIFO delivery.
    Fifo,
    /// Definition-21 canonical (FIFO, CW-first tie-break).
    Solitude,
    /// Anti-FIFO (youngest head first).
    Lifo,
    /// Seeded uniform random.
    Random,
    /// Round-robin across channels.
    RoundRobin,
    /// Starve clockwise traffic.
    StarveCw,
    /// Starve counterclockwise traffic.
    StarveCcw,
    /// Longest queue first.
    LongestQueue,
    /// Earliest virtual arrival first (realistic-time delivery).
    ///
    /// Not part of [`SchedulerKind::ALL`]: the family enumerates the paper's
    /// *adversarial* schedules, whereas `Latency` models a benign network and
    /// degenerates to [`SchedulerKind::Fifo`] without a latency plan — adding
    /// it to the grid would only duplicate FIFO rows.
    Latency,
}

impl SchedulerKind {
    /// All adversarial kinds, in a fixed order ([`SchedulerKind::Latency`]
    /// is deliberately excluded — see its docs).
    pub const ALL: [SchedulerKind; 8] = [
        SchedulerKind::Fifo,
        SchedulerKind::Solitude,
        SchedulerKind::Lifo,
        SchedulerKind::Random,
        SchedulerKind::RoundRobin,
        SchedulerKind::StarveCw,
        SchedulerKind::StarveCcw,
        SchedulerKind::LongestQueue,
    ];

    /// Instantiates the scheduler; `seed` only affects [`SchedulerKind::Random`].
    #[must_use]
    pub fn build(self, seed: u64) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Fifo => Box::new(FifoScheduler::new()),
            SchedulerKind::Solitude => Box::new(SolitudeScheduler::new()),
            SchedulerKind::Lifo => Box::new(LifoScheduler::new()),
            SchedulerKind::Random => Box::new(RandomScheduler::seeded(seed)),
            SchedulerKind::RoundRobin => Box::new(RoundRobinScheduler::new()),
            SchedulerKind::StarveCw => Box::new(StarveDirectionScheduler::new(Direction::Cw)),
            SchedulerKind::StarveCcw => Box::new(StarveDirectionScheduler::new(Direction::Ccw)),
            SchedulerKind::LongestQueue => Box::new(LongestQueueScheduler::new()),
            SchedulerKind::Latency => Box::new(LatencyScheduler::new()),
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::Solitude => "solitude",
            SchedulerKind::Lifo => "lifo",
            SchedulerKind::Random => "random",
            SchedulerKind::RoundRobin => "round-robin",
            SchedulerKind::StarveCw => "starve-cw",
            SchedulerKind::StarveCcw => "starve-ccw",
            SchedulerKind::LongestQueue => "longest-queue",
            SchedulerKind::Latency => "latency",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(
        id: usize,
        queue_len: usize,
        head_seq: u64,
        direction: Option<Direction>,
    ) -> ChannelView {
        ChannelView {
            id: ChannelId::from_index(id),
            queue_len,
            head_seq,
            direction,
            arrival: 0,
        }
    }

    /// Like `view`, with an explicit virtual arrival time.
    fn viewt(id: usize, head_seq: u64, arrival: u64) -> ChannelView {
        ChannelView {
            arrival,
            ..view(id, 1, head_seq, None)
        }
    }

    #[test]
    fn fifo_picks_oldest() {
        let mut s = FifoScheduler::new();
        let ready = [
            view(0, 1, 9, None),
            view(1, 1, 3, None),
            view(2, 1, 5, None),
        ];
        assert_eq!(s.pick(&ready), 1);
    }

    #[test]
    fn solitude_breaks_ties_cw_first() {
        let mut s = SolitudeScheduler::new();
        let ready = [
            view(0, 1, 3, Some(Direction::Ccw)),
            view(1, 1, 3, Some(Direction::Cw)),
        ];
        assert_eq!(s.pick(&ready), 1);
    }

    #[test]
    fn lifo_picks_youngest() {
        let mut s = LifoScheduler::new();
        let ready = [view(0, 1, 9, None), view(1, 1, 3, None)];
        assert_eq!(s.pick(&ready), 0);
    }

    #[test]
    fn random_is_reproducible() {
        let ready = [
            view(0, 1, 0, None),
            view(1, 1, 1, None),
            view(2, 1, 2, None),
        ];
        let picks_a: Vec<usize> = {
            let mut s = RandomScheduler::seeded(7);
            (0..16).map(|_| s.pick(&ready)).collect()
        };
        let picks_b: Vec<usize> = {
            let mut s = RandomScheduler::seeded(7);
            (0..16).map(|_| s.pick(&ready)).collect()
        };
        assert_eq!(picks_a, picks_b);
        assert!(picks_a.iter().all(|&p| p < 3));
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = RoundRobinScheduler::new();
        let ready = [
            view(0, 1, 0, None),
            view(2, 1, 1, None),
            view(5, 1, 2, None),
        ];
        assert_eq!(s.pick(&ready), 0);
        assert_eq!(s.pick(&ready), 1);
        assert_eq!(s.pick(&ready), 2);
        assert_eq!(s.pick(&ready), 0); // wraps
    }

    #[test]
    fn round_robin_is_ready_order_independent() {
        // The engine's ready array is dense and unsorted; the same ready
        // *set* must yield the same channel regardless of array order.
        let sorted = [
            view(0, 1, 0, None),
            view(2, 1, 1, None),
            view(5, 1, 2, None),
        ];
        let shuffled = [sorted[2], sorted[0], sorted[1]];
        let mut a = RoundRobinScheduler::new();
        let mut b = RoundRobinScheduler::new();
        for _ in 0..5 {
            let pa = a.pick(&sorted);
            let pb = b.pick(&shuffled);
            assert_eq!(sorted[pa].id, shuffled[pb].id);
        }
    }

    #[test]
    fn starve_direction_defers_victim() {
        let mut s = StarveDirectionScheduler::new(Direction::Ccw);
        let ready = [
            view(0, 1, 0, Some(Direction::Ccw)),
            view(1, 1, 5, Some(Direction::Cw)),
        ];
        // CCW is older but starved; CW wins.
        assert_eq!(s.pick(&ready), 1);
        // Only CCW ready: it must be delivered (finite delays).
        let only = [view(0, 1, 0, Some(Direction::Ccw))];
        assert_eq!(s.pick(&only), 0);
    }

    #[test]
    fn starve_node_defers_incoming() {
        let incoming = vec![ChannelId::from_index(0)];
        let mut s = StarveNodeScheduler::new(0, incoming);
        assert_eq!(s.victim(), 0);
        let ready = [view(0, 1, 0, None), view(3, 1, 9, None)];
        assert_eq!(s.pick(&ready), 1);
    }

    #[test]
    fn longest_queue_first() {
        let mut s = LongestQueueScheduler::new();
        let ready = [view(0, 2, 0, None), view(1, 7, 5, None)];
        assert_eq!(s.pick(&ready), 1);
    }

    #[test]
    fn latency_picks_earliest_arrival_head_seq_ties() {
        let mut s = LatencyScheduler::new();
        let ready = [viewt(0, 9, 7), viewt(1, 3, 4), viewt(2, 1, 4)];
        // Channel 1 and 2 tie on arrival 4; the older head (seq 1) wins.
        assert_eq!(s.pick(&ready), 2);
        // All-zero arrivals (no latency plan): degenerates to FIFO.
        let untimed = [view(0, 1, 9, None), view(1, 1, 3, None)];
        assert_eq!(s.pick(&untimed), FifoScheduler::new().pick(&untimed));
    }

    #[test]
    fn latency_indexed_pick_matches_scan() {
        let ready = [viewt(0, 2, 5), viewt(3, 7, 1), viewt(6, 4, 1)];
        let mut indexed = LatencyScheduler::new();
        let mut scan = LatencyScheduler::new();
        indexed.rebuild_index(&ready);
        for round in 0..3 {
            let id = indexed.indexed_pick().expect("index built");
            let at = scan.pick(&ready);
            assert_eq!(id, ready[at].id, "diverged at round {round}");
        }
        // Head advance re-keys the index.
        indexed.on_head_change(viewt(3, 8, 9));
        assert_eq!(indexed.indexed_pick(), Some(ChannelId::from_index(6)));
        indexed.on_unready(ChannelId::from_index(6));
        indexed.on_unready(ChannelId::from_index(0));
        assert_eq!(indexed.indexed_pick(), Some(ChannelId::from_index(3)));
    }

    #[test]
    fn latency_kind_is_buildable_but_not_in_all() {
        assert!(!SchedulerKind::ALL.contains(&SchedulerKind::Latency));
        assert_eq!(SchedulerKind::Latency.to_string(), "latency");
        let ready = [viewt(0, 1, 3), viewt(1, 0, 8)];
        let mut s = SchedulerKind::Latency.build(0);
        assert_eq!(s.pick(&ready), 0);
    }

    #[test]
    fn bounded_delay_eventually_delivers_the_oldest() {
        // With bound 2, a head can be skipped at most ~twice before being
        // forced out.
        let ready = [
            view(0, 1, 0, None),
            view(1, 1, 1, None),
            view(2, 1, 2, None),
        ];
        let mut s = BoundedDelayScheduler::new(2, 42);
        // Track how long channel 0 survives without being picked.
        let mut survived = 0;
        for _ in 0..16 {
            let p = s.pick(&ready);
            if p == 0 {
                break;
            }
            survived += 1;
        }
        assert!(survived <= 3, "channel 0 skipped {survived} times");
    }

    #[test]
    fn bounded_delay_zero_acts_promptly() {
        let ready = [view(0, 1, 0, None), view(1, 1, 1, None)];
        let mut s = BoundedDelayScheduler::new(0, 1);
        // After the first pick, every remaining head is immediately overdue.
        let first = s.pick(&ready);
        let second = s.pick(&ready);
        assert!(first < 2 && second < 2);
    }

    #[test]
    fn replay_follows_script_with_fifo_fallback() {
        let ready = [view(0, 1, 5, None), view(2, 1, 3, None)];
        let mut s = ReplayScheduler::new(vec![
            ChannelId::from_index(2),
            ChannelId::from_index(9), // not ready: falls back to FIFO
        ]);
        assert_eq!(s.pick(&ready), 1); // scripted: channel 2
        assert_eq!(s.pick(&ready), 1); // fallback FIFO: oldest head (seq 3)
        assert_eq!(s.consumed(), 2);
        assert_eq!(s.pick(&ready), 1); // script exhausted: FIFO
    }

    #[test]
    fn recording_then_replay_reproduces_picks() {
        let ready = [
            view(0, 1, 5, None),
            view(2, 1, 3, None),
            view(4, 1, 9, None),
        ];
        let (mut rec, log) = RecordingScheduler::new(Box::new(LifoScheduler::new()));
        let original: Vec<usize> = (0..4).map(|_| rec.pick(&ready)).collect();
        let mut replay = ReplayScheduler::new(log.borrow().clone());
        let replayed: Vec<usize> = (0..4).map(|_| replay.pick(&ready)).collect();
        assert_eq!(original, replayed);
    }

    #[test]
    fn phase_switch_changes_adversary() {
        let ready = [view(0, 1, 1, None), view(1, 1, 9, None)];
        let mut s = PhaseSwitchScheduler::new(
            Box::new(FifoScheduler::new()),
            Box::new(LifoScheduler::new()),
            2,
        );
        assert_eq!(s.pick(&ready), 0); // FIFO: oldest
        assert_eq!(s.pick(&ready), 0);
        assert_eq!(s.pick(&ready), 1); // switched to LIFO: youngest
    }

    #[test]
    fn save_restore_resumes_random_stream() {
        let ready = [
            view(0, 1, 0, None),
            view(1, 1, 1, None),
            view(2, 1, 2, None),
        ];
        let mut s = RandomScheduler::seeded(99);
        for _ in 0..13 {
            s.pick(&ready);
        }
        let saved = s.save_state();
        let future: Vec<usize> = (0..32).map(|_| s.pick(&ready)).collect();
        let mut restored = RandomScheduler::seeded(0);
        restored.restore_state(&saved);
        let resumed: Vec<usize> = (0..32).map(|_| restored.pick(&ready)).collect();
        assert_eq!(future, resumed);
    }

    #[test]
    fn save_restore_roundtrips_bounded_delay() {
        let ready = [
            view(0, 1, 0, None),
            view(1, 1, 1, None),
            view(2, 1, 2, None),
        ];
        let mut s = BoundedDelayScheduler::new(3, 5);
        for _ in 0..7 {
            s.pick(&ready);
        }
        let saved = s.save_state();
        let future: Vec<usize> = (0..16).map(|_| s.pick(&ready)).collect();
        let mut restored = BoundedDelayScheduler::new(3, 0);
        restored.restore_state(&saved);
        let resumed: Vec<usize> = (0..16).map(|_| restored.pick(&ready)).collect();
        assert_eq!(future, resumed);
    }

    #[test]
    fn save_restore_roundtrips_phase_switch() {
        let ready = [view(0, 1, 1, None), view(1, 1, 9, None)];
        let mut s = PhaseSwitchScheduler::new(
            Box::new(RandomScheduler::seeded(4)),
            Box::new(RandomScheduler::seeded(8)),
            5,
        );
        for _ in 0..3 {
            s.pick(&ready);
        }
        let saved = s.save_state();
        let future: Vec<usize> = (0..16).map(|_| s.pick(&ready)).collect();
        let mut restored = PhaseSwitchScheduler::new(
            Box::new(RandomScheduler::seeded(0)),
            Box::new(RandomScheduler::seeded(0)),
            5,
        );
        restored.restore_state(&saved);
        let resumed: Vec<usize> = (0..16).map(|_| restored.pick(&ready)).collect();
        assert_eq!(future, resumed);
    }

    #[test]
    fn ready_index_orders_and_upserts() {
        let mut idx: ReadyIndex<u64> = ReadyIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.first(), None);
        idx.insert(3, 30);
        idx.insert(7, 10);
        idx.insert(1, 20);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.first(), Some(7)); // smallest key
        assert_eq!(idx.last(), Some(3)); // largest key
        assert!(idx.contains(1) && !idx.contains(2));
        // Upsert re-keys in place.
        idx.insert(7, 99);
        assert_eq!(idx.first(), Some(1));
        assert_eq!(idx.last(), Some(7));
        // Same-key upsert is a no-op.
        idx.insert(1, 20);
        assert_eq!(idx.len(), 3);
        idx.remove(1);
        assert!(!idx.contains(1));
        assert_eq!(idx.len(), 2);
        // Removing an absent channel is harmless.
        idx.remove(1);
        idx.remove(40);
        idx.clear();
        assert!(idx.is_empty() && idx.first().is_none() && idx.last().is_none());
    }

    #[test]
    fn ready_index_successor_query_wraps_round_robin() {
        let mut idx: ReadyIndex<()> = ReadyIndex::new();
        for ch in [0, 2, 5] {
            idx.insert(ch, ());
        }
        assert_eq!(idx.first_at_or_after((), 0), Some(0));
        assert_eq!(idx.first_at_or_after((), 1), Some(2));
        assert_eq!(idx.first_at_or_after((), 3), Some(5));
        assert_eq!(idx.first_at_or_after((), 6), None); // caller wraps to first()
        assert_eq!(idx.first(), Some(0));
    }

    /// Drives a scheduler's hooks over a ready set so `indexed_pick` can be
    /// exercised outside an engine.
    fn feed(s: &mut dyn Scheduler, ready: &[ChannelView]) {
        s.rebuild_index(ready);
    }

    #[test]
    fn indexed_picks_match_scan_picks_for_every_kind() {
        // One fixed ready set; the real property suite
        // (tests/sched_index_equivalence.rs) runs randomized mutation
        // sequences through the engine.
        let ready = [
            view(0, 2, 7, Some(Direction::Cw)),
            view(3, 1, 2, Some(Direction::Ccw)),
            view(4, 5, 11, Some(Direction::Cw)),
            view(6, 5, 3, None),
        ];
        for kind in SchedulerKind::ALL {
            if kind == SchedulerKind::Random {
                let mut s = kind.build(5);
                feed(s.as_mut(), &ready);
                assert_eq!(s.indexed_pick(), None, "random keeps no index");
                continue;
            }
            let mut indexed = kind.build(5);
            let mut scan = kind.build(5);
            feed(indexed.as_mut(), &ready);
            for round in 0..4 {
                let id = indexed.indexed_pick().expect("index built");
                let at = scan.pick(&ready);
                assert_eq!(id, ready[at].id, "{kind} diverged at round {round}");
            }
        }
    }

    #[test]
    fn starve_node_indexed_pick_defers_victim_channels() {
        let incoming = vec![ChannelId::from_index(0), ChannelId::from_index(2)];
        let mut s = StarveNodeScheduler::new(1, incoming);
        let ready = [
            view(0, 1, 0, None),
            view(2, 1, 1, None),
            view(5, 1, 9, None),
        ];
        s.rebuild_index(&ready);
        // Non-victim channel 5 wins despite the younger heads toward the victim.
        assert_eq!(s.indexed_pick(), Some(ChannelId::from_index(5)));
        s.on_unready(ChannelId::from_index(5));
        // Only victim channels left: oldest head among them.
        assert_eq!(s.indexed_pick(), Some(ChannelId::from_index(0)));
    }

    #[test]
    fn replay_indexed_pick_follows_script_with_indexed_fallback() {
        let ready = [view(0, 1, 5, None), view(2, 1, 3, None)];
        let mut s = ReplayScheduler::new(vec![
            ChannelId::from_index(2),
            ChannelId::from_index(9), // never ready: indexed FIFO fallback
        ]);
        // Without an index the scan path must be used instead.
        assert_eq!(s.indexed_pick(), None);
        assert_eq!(s.consumed(), 0, "script untouched while index is empty");
        s.rebuild_index(&ready);
        assert_eq!(s.indexed_pick(), Some(ChannelId::from_index(2))); // scripted
        assert_eq!(s.indexed_pick(), Some(ChannelId::from_index(2))); // fallback: oldest head
        assert_eq!(s.consumed(), 2);
        assert_eq!(s.indexed_pick(), Some(ChannelId::from_index(2))); // script exhausted
    }

    #[test]
    fn recording_logs_indexed_picks_too() {
        let ready = [view(0, 1, 5, None), view(2, 1, 3, None)];
        let (mut rec, log) = RecordingScheduler::new(Box::new(FifoScheduler::new()));
        rec.rebuild_index(&ready);
        let id = rec.indexed_pick().expect("inner fifo is indexed");
        assert_eq!(id, ChannelId::from_index(2));
        assert_eq!(*log.borrow(), vec![ChannelId::from_index(2)]);
    }

    #[test]
    fn phase_switch_indexed_pick_counts_deliveries_once() {
        let ready = [view(0, 1, 1, None), view(1, 1, 9, None)];
        let mut s = PhaseSwitchScheduler::new(
            Box::new(FifoScheduler::new()),
            Box::new(LifoScheduler::new()),
            2,
        );
        s.rebuild_index(&ready);
        assert_eq!(s.indexed_pick(), Some(ChannelId::from_index(0))); // FIFO
        assert_eq!(s.indexed_pick(), Some(ChannelId::from_index(0)));
        assert_eq!(s.indexed_pick(), Some(ChannelId::from_index(1))); // LIFO
                                                                      // A child without an index defers to the scan path without
                                                                      // double-counting the delivery.
        let mut mixed = PhaseSwitchScheduler::new(
            Box::new(RandomScheduler::seeded(3)),
            Box::new(LifoScheduler::new()),
            1,
        );
        mixed.rebuild_index(&ready);
        assert_eq!(mixed.indexed_pick(), None);
        assert!(mixed.pick(&ready) < ready.len()); // scan path counts the delivery once
        assert_eq!(mixed.indexed_pick(), Some(ChannelId::from_index(1))); // switched
    }

    #[test]
    fn bounded_delay_save_layout_is_unchanged() {
        // The serialized layout is a public stability contract:
        // [picks, rng[0..4], (channel, deadline) pairs sorted by channel].
        // Restoring a handcrafted vector and saving must reproduce it
        // byte-for-byte even though the in-memory representation now keeps a
        // derived deadline mirror.
        let rng_words = StdRng::seed_from_u64(77).to_state();
        let mut handcrafted = vec![42u64];
        handcrafted.extend(rng_words);
        handcrafted.extend([1, 50, 4, 44, 9, 60]); // pairs sorted by channel
        let mut s = BoundedDelayScheduler::new(3, 0);
        s.restore_state(&handcrafted);
        assert_eq!(s.save_state(), handcrafted);
        // And the restored deadline mirror drives picks: channel 4 has the
        // oldest deadline (44 <= picks=42 is false... all deadlines 44..60
        // are in the future at picks=42; two picks later 44 is overdue).
        let ready = [
            view(1, 1, 0, None),
            view(4, 1, 1, None),
            view(9, 1, 2, None),
        ];
        s.clock.set(43); // next pick ticks to 44: channel 4 becomes overdue
        let at = s.pick(&ready);
        assert_eq!(ready[at].id, ChannelId::from_index(4));
    }

    #[test]
    fn kind_family_builds() {
        let ready = [view(0, 1, 0, Some(Direction::Cw)), view(1, 1, 1, None)];
        for kind in SchedulerKind::ALL {
            let mut s = kind.build(123);
            let pick = s.pick(&ready);
            assert!(pick < ready.len(), "{kind} returned invalid index");
            assert!(!kind.to_string().is_empty());
        }
    }

    #[test]
    fn batch_quota_defaults_to_per_pulse() {
        // Schedulers without a fusion proof must answer 1 regardless of run
        // length, and note_batch must be a no-op for them.
        let v = view(0, 8, 0, None);
        assert_eq!(LifoScheduler::new().batch_quota(v, 8), 1);
        assert_eq!(RandomScheduler::seeded(1).batch_quota(v, 8), 1);
        assert_eq!(RoundRobinScheduler::new().batch_quota(v, 8), 1);
        assert_eq!(LongestQueueScheduler::new().batch_quota(v, 8), 1);
        assert_eq!(BoundedDelayScheduler::new(4, 0).batch_quota(v, 8), 1);
    }

    #[test]
    fn fifo_family_quotas_cover_the_full_run() {
        let v = view(3, 8, 10, Some(Direction::Cw));
        assert_eq!(FifoScheduler::new().batch_quota(v, 8), 8);
        assert_eq!(SolitudeScheduler::new().batch_quota(v, 8), 8);
        assert_eq!(LatencyScheduler::new().batch_quota(v, 8), 8);
    }

    #[test]
    fn starve_quotas_fuse_only_the_preferred_tier() {
        let mut dir = StarveDirectionScheduler::new(Direction::Ccw);
        assert_eq!(dir.batch_quota(view(0, 5, 0, Some(Direction::Cw)), 5), 5);
        assert_eq!(dir.batch_quota(view(1, 5, 0, Some(Direction::Ccw)), 5), 1);
        assert_eq!(dir.batch_quota(view(2, 5, 0, None), 5), 5);

        let mut node = StarveNodeScheduler::new(0, vec![ChannelId::from_index(1)]);
        assert_eq!(node.batch_quota(view(0, 5, 0, None), 5), 5);
        assert_eq!(node.batch_quota(view(1, 5, 0, None), 5), 1);
    }

    #[test]
    fn replay_quota_fuses_scripted_prefix_and_note_batch_moves_cursor() {
        let c2 = ChannelId::from_index(2);
        let c7 = ChannelId::from_index(7);
        let mut s = ReplayScheduler::new(vec![c2, c2, c2, c7, c2]);
        let ready = [view(2, 10, 0, None), view(7, 1, 50, None)];
        s.rebuild_index(&ready);
        assert_eq!(s.indexed_pick(), Some(c2)); // consumes script[0]
                                                // Entries 1 and 2 also name channel 2; entry 3 (c7) breaks the run.
        assert_eq!(s.batch_quota(ready[0], 10), 3);
        s.note_batch(c2, 3);
        assert_eq!(s.consumed(), 3);
        // Clamped fusions advance the cursor only as far as delivered.
        let mut t = ReplayScheduler::new(vec![c2, c2, c2]);
        t.rebuild_index(&ready);
        assert_eq!(t.indexed_pick(), Some(c2));
        assert_eq!(t.batch_quota(ready[0], 2), 2); // run shorter than script
        t.note_batch(c2, 2);
        assert_eq!(t.consumed(), 2);
        // Past the script's end the FIFO fallback fuses full runs.
        assert_eq!(t.indexed_pick(), Some(c2));
        assert_eq!(t.batch_quota(ready[0], 10), 10);
        t.note_batch(c2, 10);
        assert_eq!(t.consumed(), 3, "cursor saturates at the script length");
    }

    #[test]
    fn recording_note_batch_logs_one_pick_per_pulse() {
        let ready = [view(2, 4, 3, None)];
        let (mut rec, log) = RecordingScheduler::new(Box::new(FifoScheduler::new()));
        rec.rebuild_index(&ready);
        let id = rec.indexed_pick().expect("fifo is indexed");
        assert_eq!(rec.batch_quota(ready[0], 4), 4);
        rec.note_batch(id, 4);
        assert_eq!(*log.borrow(), vec![id; 4]);
    }
}
