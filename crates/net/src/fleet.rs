//! Fleet mode: millions of concurrent independent ring elections in one
//! process.
//!
//! The production framing of this repository ("heavy traffic from millions
//! of users") maps to millions of *small* concurrent elections, not one
//! giant ring. A [`Simulation`](crate::Simulation) heap-allocates its own
//! queues, scheduler and stats — fine for one ring, ruinous for 10⁶. This
//! module packs a whole *shard* of rings into contiguous struct-of-arrays
//! arenas instead:
//!
//! - **protocol state**: one `Vec<P>` holding every node of every ring in
//!   the shard, addressed by per-ring offsets;
//! - **queue runs**: a single free-listed run arena (16-byte
//!   `(head_seq, len)` runs, exactly the counter backend's representation)
//!   shared by all channels of the shard, with per-channel head/tail
//!   cursors in flat arrays;
//! - **scheduler cursors**: per-channel queue lengths in a flat array; the
//!   FIFO pick is a min-`head_seq` scan over one ring's `2n` channels.
//!
//! Rings are mutually independent, so a shard runs them one after another
//! through the same arenas (maximum cache reuse, zero per-ring allocation
//! after warm-up) and shards fan out across threads. Everything a ring does
//! is derived from [`ring_seed`] — a splitmix64 chain over
//! `(fleet seed, round, ring index)` — so the aggregate [`FleetReport`] is
//! byte-identical for any shard-to-thread assignment: `--jobs 1`,
//! `--jobs 8` and a re-run all produce the same bytes.
//!
//! Per-ring execution replicates the [`EventCore`](crate::EventCore)
//! delivery semantics exactly — same send-sequence numbering, same FIFO
//! (min `head_seq`) pick, same outcome taxonomy, same stats bookkeeping —
//! which [`run_ring_detailed`] turns into a checkable contract: a one-ring
//! fleet yields the same [`RunReport`], [`SimStats`] and fingerprint as the
//! equivalent [`Simulation`](crate::Simulation) run
//! (`tests/fleet_determinism.rs` locks this in for the paper's algorithms).
//!
//! Fleet runs are untimed, per-pulse and FIFO-scheduled: the virtual-clock
//! and run-batching layers stay single-ring concerns. Fault injection is
//! the engine's spurious-pulse primitive (`inject`): with probability
//! `fault_rate` a ring receives one extra content-free pulse on a random
//! clockwise channel, which counts toward `faults_injected` but never toward
//! `total_sent`, exactly like
//! [`EventCore::inject_run`](crate::EventCore::inject_run).

use crate::engine::{Budget, Outcome, RunReport, SimStats};
use crate::port::Port;
use crate::prof;
use crate::sim::{Context, Protocol};
use crate::snapshot::{Fingerprint, Snapshot};
use crate::Pulse;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;
use std::str::FromStr;

/// Bytes one queue run occupies in the counter backend: `(head_seq, len)`.
pub const RUN_BYTES: u64 = 16;

/// Default rings per shard — the arena granularity. Big enough to amortize
/// arena allocation, small enough that a shard's arenas stay a few MB and
/// stream through cache while other shards run on other threads.
pub const DEFAULT_SHARD_RINGS: u64 = 8192;

/// splitmix64 finalizer: the standard 64-bit avalanche mix.
fn mix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic per-ring seed: a splitmix64 chain over the fleet seed,
/// round number and ring index.
///
/// Every random choice a ring makes (its size, its ID assignment, its fault
/// roll) is drawn from a [`StdRng`] seeded with this value, so a ring's
/// entire execution is a pure function of `(fleet_seed, round, ring)` — the
/// property that makes fleet output independent of sharding and thread
/// count.
#[must_use]
pub fn ring_seed(fleet_seed: u64, round: u64, ring: u64) -> u64 {
    mix64(mix64(mix64(fleet_seed) ^ round) ^ ring)
}

/// Distribution of ring sizes across the fleet.
///
/// Parsed from the CLI `--ring-sizes` flag: `"4"` (every ring has 4 nodes),
/// `"uniform:3..9"` (uniform over the inclusive range) or `"mix:3,5,8"`
/// (uniform over the listed sizes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RingSizes {
    /// Every ring has exactly this many nodes.
    Fixed(usize),
    /// Sizes drawn uniformly from `min..=max`.
    Uniform {
        /// Smallest ring size (inclusive, ≥ 1).
        min: usize,
        /// Largest ring size (inclusive).
        max: usize,
    },
    /// Sizes drawn uniformly from an explicit list.
    Mix(Vec<usize>),
}

impl RingSizes {
    /// Draws one ring size from the distribution.
    #[must_use]
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        match self {
            RingSizes::Fixed(n) => *n,
            RingSizes::Uniform { min, max } => rng.gen_range(*min..=*max),
            RingSizes::Mix(sizes) => sizes[rng.gen_range(0..sizes.len())],
        }
    }

    /// The largest size the distribution can produce.
    #[must_use]
    pub fn max_len(&self) -> usize {
        match self {
            RingSizes::Fixed(n) => *n,
            RingSizes::Uniform { max, .. } => *max,
            RingSizes::Mix(sizes) => sizes.iter().copied().max().unwrap_or(0),
        }
    }
}

impl fmt::Display for RingSizes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingSizes::Fixed(n) => write!(f, "{n}"),
            RingSizes::Uniform { min, max } => write!(f, "uniform:{min}..{max}"),
            RingSizes::Mix(sizes) => {
                write!(f, "mix:")?;
                for (i, n) in sizes.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{n}")?;
                }
                Ok(())
            }
        }
    }
}

impl FromStr for RingSizes {
    type Err = String;

    fn from_str(s: &str) -> Result<RingSizes, String> {
        fn size(s: &str) -> Result<usize, String> {
            match s.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                Ok(_) => Err("ring sizes must be >= 1".to_owned()),
                Err(_) => Err(format!("invalid ring size '{s}'")),
            }
        }
        if let Some(range) = s.strip_prefix("uniform:") {
            let (lo, hi) = range
                .split_once("..")
                .ok_or_else(|| format!("expected uniform:MIN..MAX, got '{s}'"))?;
            let (min, max) = (size(lo)?, size(hi)?);
            if min > max {
                return Err(format!("empty range uniform:{min}..{max}"));
            }
            Ok(RingSizes::Uniform { min, max })
        } else if let Some(list) = s.strip_prefix("mix:") {
            let sizes = list.split(',').map(size).collect::<Result<Vec<_>, _>>()?;
            if sizes.is_empty() {
                return Err("mix: needs at least one size".to_owned());
            }
            Ok(RingSizes::Mix(sizes))
        } else {
            Ok(RingSizes::Fixed(size(s)?))
        }
    }
}

/// Configuration of a fleet run.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetConfig {
    /// Number of independent rings per round.
    pub rings: u64,
    /// Ring-size distribution.
    pub sizes: RingSizes,
    /// Fleet seed; combined with round and ring index by [`ring_seed`].
    pub seed: u64,
    /// Per-ring probability of injecting one spurious pulse on a random
    /// clockwise channel after start-up (`0.0` = fault-free).
    pub fault_rate: f64,
    /// Per-ring pulse budget override; `None` uses the default formula
    /// `8·n² + 256`, comfortably above the paper's `n·(2·ID_max + 1)`
    /// bound for fleet-assigned IDs (a permutation of `1..=n`).
    pub ring_budget: Option<u64>,
    /// Rings per shard (arena granularity); shards are the unit of
    /// thread-level parallelism. The value never affects results, only
    /// memory footprint and load balance.
    pub shard_rings: u64,
}

impl FleetConfig {
    /// A fleet of `rings` four-node rings, seed 0, fault-free, default
    /// sharding.
    #[must_use]
    pub fn new(rings: u64) -> FleetConfig {
        FleetConfig {
            rings,
            sizes: RingSizes::Fixed(4),
            seed: 0,
            fault_rate: 0.0,
            ring_budget: None,
            shard_rings: DEFAULT_SHARD_RINGS,
        }
    }

    /// The pulse budget applied to one ring of `n` nodes.
    #[must_use]
    pub fn budget_for(&self, n: usize) -> u64 {
        self.ring_budget
            .unwrap_or_else(|| 8 * (n as u64) * (n as u64) + 256)
    }

    /// Number of shards the fleet splits into.
    #[must_use]
    pub fn shard_count(&self) -> u64 {
        let per = self.shard_rings.max(1);
        self.rings.div_ceil(per)
    }

    /// Ring-index range of one shard.
    #[must_use]
    pub fn shard_range(&self, shard: u64) -> Range<u64> {
        let per = self.shard_rings.max(1);
        let start = shard * per;
        start..self.rings.min(start + per)
    }
}

/// Everything a ring does, derived deterministically from [`ring_seed`]:
/// its size, its ID assignment and its fault-injection choice.
///
/// The draw order is fixed (size, then IDs, then fault roll, then fault
/// channel) and shared by [`run_shard`] and [`ring_plan`], so a test can
/// reconstruct the exact single-ring `Simulation` a fleet ring ran.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingPlan {
    /// Ring index within the fleet.
    pub ring: u64,
    /// Number of nodes.
    pub n: usize,
    /// ID of each node by position: a shuffled permutation of `1..=n`
    /// (positive, unique — `ID_max = n`). The ring is oriented: every
    /// node's clockwise port is [`Port::One`], matching
    /// [`RingSpec::oriented`](crate::RingSpec::oriented).
    pub ids: Vec<u64>,
    /// Spurious-pulse injection target, if the fault roll hit: a ring-local
    /// channel index (channel `2·v + p` is node `v`'s port `p`). Always a
    /// clockwise channel (`p = 1`): CW is the direction every election
    /// protocol listens on, so a spurious CW pulse corrupts its pulse
    /// counting, while a CCW pulse would merely violate Algorithm 1's
    /// direction invariant.
    pub inject: Option<usize>,
}

impl RingPlan {
    fn empty() -> RingPlan {
        RingPlan {
            ring: 0,
            n: 0,
            ids: Vec::new(),
            inject: None,
        }
    }
}

/// Fills `plan` for one ring, reusing its `ids` allocation.
fn fill_plan(cfg: &FleetConfig, round: u64, ring: u64, plan: &mut RingPlan) {
    let mut rng = StdRng::seed_from_u64(ring_seed(cfg.seed, round, ring));
    let n = cfg.sizes.sample(&mut rng);
    plan.ring = ring;
    plan.n = n;
    plan.ids.clear();
    plan.ids.extend(1..=n as u64);
    plan.ids.shuffle(&mut rng);
    plan.inject = if cfg.fault_rate > 0.0 && rng.gen::<f64>() < cfg.fault_rate {
        Some(2 * rng.gen_range(0..n) + 1)
    } else {
        None
    };
}

/// The deterministic plan of ring `ring` in round `round`.
#[must_use]
pub fn ring_plan(cfg: &FleetConfig, round: u64, ring: u64) -> RingPlan {
    let mut plan = RingPlan::empty();
    fill_plan(cfg, round, ring, &mut plan);
    plan
}

// ---------------------------------------------------------------------------
// Queue arenas
// ---------------------------------------------------------------------------

/// Sentinel for "no run" in the run arena's intrusive lists.
const NO_RUN: u32 = u32::MAX;

/// Free-listed arena of queue runs: the counter backend's 16-byte
/// `(head_seq, len)` representation, shared by every channel of a shard.
///
/// Runs form singly linked per-channel chains through `next`; freed runs go
/// on an intrusive free list, so a shard performs no queue allocation after
/// its high-water mark.
#[derive(Debug)]
struct RunArena {
    head_seq: Vec<u64>,
    len: Vec<u64>,
    next: Vec<u32>,
    free: u32,
    /// Currently live runs, and the high-water mark of the *current ring*
    /// (reset by the per-ring loop; used for peak bytes/ring).
    live: u64,
    peak: u64,
}

impl RunArena {
    fn new() -> RunArena {
        RunArena {
            head_seq: Vec::new(),
            len: Vec::new(),
            next: Vec::new(),
            free: NO_RUN,
            live: 0,
            peak: 0,
        }
    }

    /// Allocates a fresh single-message run starting at `seq`.
    fn alloc(&mut self, seq: u64) -> u32 {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        if self.free == NO_RUN {
            self.head_seq.push(seq);
            self.len.push(1);
            self.next.push(NO_RUN);
            (self.head_seq.len() - 1) as u32
        } else {
            let idx = self.free;
            self.free = self.next[idx as usize];
            self.head_seq[idx as usize] = seq;
            self.len[idx as usize] = 1;
            self.next[idx as usize] = NO_RUN;
            idx
        }
    }

    fn release(&mut self, idx: u32) {
        self.next[idx as usize] = self.free;
        self.free = idx;
        self.live -= 1;
    }
}

/// One ring's view of the queue state: per-channel cursors (subslices of
/// the shard's flat arrays) plus the shard-wide run arena.
struct Queues<'a> {
    len: &'a mut [u64],
    head: &'a mut [u32],
    tail: &'a mut [u32],
    runs: &'a mut RunArena,
}

impl Queues<'_> {
    /// Appends send `seq` to channel `c`, coalescing with the tail run when
    /// the sequence is contiguous — the counter backend's enqueue.
    fn enqueue(&mut self, c: usize, seq: u64) {
        if self.len[c] > 0 {
            let t = self.tail[c] as usize;
            if self.runs.head_seq[t] + self.runs.len[t] == seq {
                self.runs.len[t] += 1;
            } else {
                let idx = self.runs.alloc(seq);
                self.runs.next[self.tail[c] as usize] = idx;
                self.tail[c] = idx;
            }
        } else {
            let idx = self.runs.alloc(seq);
            self.head[c] = idx;
            self.tail[c] = idx;
        }
        self.len[c] += 1;
    }

    /// Sequence number at the head of channel `c` (undefined if empty).
    fn head_seq(&self, c: usize) -> u64 {
        self.runs.head_seq[self.head[c] as usize]
    }

    /// Pops the head message of channel `c`.
    fn pop(&mut self, c: usize) {
        let h = self.head[c] as usize;
        self.runs.head_seq[h] += 1;
        self.runs.len[h] -= 1;
        self.len[c] -= 1;
        if self.runs.len[h] == 0 {
            let next = self.runs.next[h];
            self.head[c] = next;
            if next == NO_RUN {
                self.tail[c] = NO_RUN;
            }
            self.runs.release(h as u32);
        }
    }

    /// Releases every run still queued (budget-exhausted rings) so the
    /// arena can be reused by the next ring.
    fn clear(&mut self) {
        for c in 0..self.len.len() {
            let mut h = self.head[c];
            while h != NO_RUN {
                let next = self.runs.next[h as usize];
                self.runs.release(h);
                h = next;
            }
            self.len[c] = 0;
            self.head[c] = NO_RUN;
            self.tail[c] = NO_RUN;
        }
    }

    fn in_flight(&self) -> u64 {
        self.len.iter().sum()
    }
}

// ---------------------------------------------------------------------------
// Per-ring execution
// ---------------------------------------------------------------------------

/// Per-port bookkeeping hook for the per-ring loop. The aggregate path uses
/// the no-op implementation (compiled away); [`run_ring_detailed`] plugs in
/// per-node counters to reconstruct a full [`SimStats`].
trait RingObserver {
    fn on_send(&mut self, node: usize, port: usize);
    fn on_recv(&mut self, node: usize, port: usize);
}

struct NullObserver;

impl RingObserver for NullObserver {
    fn on_send(&mut self, _node: usize, _port: usize) {}
    fn on_recv(&mut self, _node: usize, _port: usize) {}
}

struct PortCounters {
    sent: Vec<[u64; 2]>,
    recv: Vec<[u64; 2]>,
}

impl RingObserver for PortCounters {
    fn on_send(&mut self, node: usize, port: usize) {
        self.sent[node][port] += 1;
    }
    fn on_recv(&mut self, node: usize, port: usize) {
        self.recv[node][port] += 1;
    }
}

/// Raw counters of one ring's run; mirrors the engine's bookkeeping.
#[derive(Clone, Copy, Debug, Default)]
struct RingRun {
    total_sent: u64,
    total_delivered: u64,
    delivered_to_terminated: u64,
    steps: u64,
    sent_by_direction: [u64; 2],
    in_flight: u64,
    injected: u64,
    peak_runs: u64,
    all_terminated: bool,
}

impl RingRun {
    fn outcome(&self) -> Outcome {
        if self.in_flight > 0 {
            Outcome::BudgetExhausted
        } else if self.all_terminated {
            if self.delivered_to_terminated == 0 {
                Outcome::QuiescentTerminated
            } else {
                Outcome::TerminatedNonQuiescent
            }
        } else {
            Outcome::Quiescent
        }
    }
}

/// Flushes a node's buffered sends in call order, assigning globally unique
/// per-ring sequence numbers — the engine's `flush_outbox`.
fn flush<O: RingObserver>(
    node: usize,
    outbox: &mut Vec<(usize, Pulse)>,
    q: &mut Queues<'_>,
    send_seq: &mut u64,
    rr: &mut RingRun,
    obs: &mut O,
) {
    let t = prof::start();
    for (port, _msg) in outbox.drain(..) {
        let seq = *send_seq;
        *send_seq += 1;
        rr.total_sent += 1;
        // Oriented ring: port One (index 1) is the CW direction (slot 0).
        rr.sent_by_direction[1 - port] += 1;
        obs.on_send(node, port);
        q.enqueue(node * 2 + port, seq);
    }
    prof::stop(prof::Phase::Enqueue, t);
}

/// Runs one oriented ring to quiescence or budget exhaustion under FIFO
/// delivery, replicating `EventCore` semantics exactly: start-up dispatch
/// order, send sequencing, min-`head_seq` picks, ignored deliveries to
/// terminated nodes, and the outcome taxonomy.
fn run_ring<P: Protocol<Pulse>, O: RingObserver>(
    nodes: &mut [P],
    terminated: &mut [bool],
    q: &mut Queues<'_>,
    outbox: &mut Vec<(usize, Pulse)>,
    inject: Option<usize>,
    budget: u64,
    obs: &mut O,
) -> RingRun {
    let n = nodes.len();
    let channels = 2 * n;
    debug_assert_eq!(q.len.len(), channels);
    let mut rr = RingRun::default();
    let mut send_seq: u64 = 0;
    q.runs.peak = q.runs.live; // ring-local high-water mark

    // Start-up: each node's on_start, flushed before the next node starts,
    // exactly like `EventCore::start`.
    for i in 0..n {
        let mut ctx = Context::buffered(i, outbox);
        nodes[i].on_start(&mut ctx);
        flush(i, outbox, q, &mut send_seq, &mut rr, obs);
        if !terminated[i] && nodes[i].is_terminated() {
            terminated[i] = true;
        }
    }

    // Fault injection: one spurious pulse, sequenced after start-up sends;
    // counted as a fault, never as a send (`EventCore::inject_run`).
    if let Some(c) = inject {
        let seq = send_seq;
        send_seq += 1;
        q.enqueue(c, seq);
        rr.injected += 1;
    }

    // Delivery loop: FIFO = globally oldest send first. Sequence numbers
    // are unique within a ring, so the min scan never ties.
    while rr.steps < budget {
        let t = prof::start();
        let mut best: Option<(usize, u64)> = None;
        for c in 0..channels {
            if q.len[c] > 0 {
                let hs = q.head_seq(c);
                if best.is_none_or(|(_, b)| hs < b) {
                    best = Some((c, hs));
                }
            }
        }
        prof::stop(prof::Phase::Pick, t);
        let Some((c, _)) = best else { break };
        q.pop(c);
        rr.steps += 1;

        // Oriented wiring: channel (v, One) feeds the CW neighbour's port
        // Zero; channel (v, Zero) feeds the CCW neighbour's port One.
        let sender = c / 2;
        let port = c % 2;
        let (receiver, in_port) = if port == 1 {
            ((sender + 1) % n, 0)
        } else {
            ((sender + n - 1) % n, 1)
        };
        if terminated[receiver] {
            rr.delivered_to_terminated += 1;
            continue;
        }
        rr.total_delivered += 1;
        obs.on_recv(receiver, in_port);
        let t = prof::start();
        let mut ctx = Context::buffered(receiver, outbox);
        nodes[receiver].on_message(Port::from_index(in_port), Pulse, &mut ctx);
        prof::stop(prof::Phase::Deliver, t);
        flush(receiver, outbox, q, &mut send_seq, &mut rr, obs);
        if !terminated[receiver] && nodes[receiver].is_terminated() {
            terminated[receiver] = true;
        }
    }

    rr.in_flight = q.in_flight();
    rr.all_terminated = terminated.iter().all(|&t| t);
    rr.peak_runs = q.runs.peak;
    rr
}

// ---------------------------------------------------------------------------
// Aggregate reporting
// ---------------------------------------------------------------------------

/// Number of histogram buckets: exact below 8, then four sub-buckets per
/// octave up to `u64::MAX`.
const HIST_BUCKETS: usize = 256;

/// A compact log-scale histogram of per-ring pulse counts.
///
/// Values below 8 are exact; larger values share four sub-buckets per
/// power of two (≤ 19 % relative error), which keeps the whole histogram
/// at 2 KiB while still giving meaningful p50/p99 estimates for fleets of
/// heterogeneous rings. Merging histograms is exact bucket-wise addition,
/// so aggregation order never changes the result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PulseHistogram {
    buckets: Vec<u64>,
    count: u64,
    max: u64,
}

fn bucket_of(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let e = 63 - u64::from(v.leading_zeros());
        (8 + (e - 3) * 4 + ((v >> (e - 2)) & 3)) as usize
    }
}

fn bucket_floor(b: usize) -> u64 {
    if b < 8 {
        b as u64
    } else {
        let e = 3 + (b as u64 - 8) / 4;
        let sub = (b as u64 - 8) % 4;
        if e >= 64 {
            // Buckets past the u64 range (unreachable from bucket_of).
            u64::MAX
        } else {
            (1 << e) + sub * (1 << (e - 2))
        }
    }
}

impl PulseHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> PulseHistogram {
        PulseHistogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Adds another histogram's counts into this one.
    pub fn merge(&mut self, other: &PulseHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value (exact, not bucketed).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0..=1.0`) as the lower bound of the bucket
    /// holding the rank — a deterministic, slightly conservative estimate.
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)) as u64;
        let mut cum = 0u64;
        for (b, &cnt) in self.buckets.iter().enumerate() {
            cum += cnt;
            if cum > rank {
                return bucket_floor(b);
            }
        }
        bucket_floor(HIST_BUCKETS - 1)
    }
}

impl Default for PulseHistogram {
    fn default() -> PulseHistogram {
        PulseHistogram::new()
    }
}

/// Deterministic aggregate result of a fleet run (one or more shards).
///
/// Every field is a pure function of the [`FleetConfig`] and round set —
/// never of wall-clock time, thread count or shard size — so two reports
/// can be compared with `==` to prove determinism. Throughput (elections
/// per second) is deliberately *not* in here; the bench driver layers
/// timing on top.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetReport {
    /// Rings run.
    pub rings: u64,
    /// Total nodes across all rings.
    pub nodes: u64,
    /// Rings that reached quiescence with exactly one leader — successful
    /// elections.
    pub elections: u64,
    /// Rings ending in [`Outcome::QuiescentTerminated`].
    pub quiescent_terminated: u64,
    /// Rings ending in [`Outcome::Quiescent`] (stabilizing protocols).
    pub quiescent: u64,
    /// Rings ending in [`Outcome::TerminatedNonQuiescent`].
    pub terminated_nonquiescent: u64,
    /// Rings whose per-ring pulse budget ran out (e.g. a spurious pulse
    /// circulating forever under Algorithm 1).
    pub budget_exhausted: u64,
    /// Pulses delivered across the fleet (including ignored deliveries to
    /// terminated nodes).
    pub total_pulses: u64,
    /// Pulses sent across the fleet (the paper's message complexity,
    /// summed; excludes injected faults).
    pub total_sent: u64,
    /// Spurious pulses injected.
    pub faults_injected: u64,
    /// Peak queue bytes of any single ring, in the counter backend's
    /// 16-byte-per-run accounting.
    pub peak_ring_queue_bytes: u64,
    /// Distribution of pulses-to-quiescence over rings that drained their
    /// queues (budget-exhausted rings excluded).
    pub pulses_to_quiescence: PulseHistogram,
}

impl FleetReport {
    /// An empty report (identity element of [`merge`](FleetReport::merge)).
    #[must_use]
    pub fn new() -> FleetReport {
        FleetReport {
            rings: 0,
            nodes: 0,
            elections: 0,
            quiescent_terminated: 0,
            quiescent: 0,
            terminated_nonquiescent: 0,
            budget_exhausted: 0,
            total_pulses: 0,
            total_sent: 0,
            faults_injected: 0,
            peak_ring_queue_bytes: 0,
            pulses_to_quiescence: PulseHistogram::new(),
        }
    }

    /// Folds another report in. Merging is commutative and associative, so
    /// any aggregation order over the same shards produces identical bytes.
    pub fn merge(&mut self, other: &FleetReport) {
        self.rings += other.rings;
        self.nodes += other.nodes;
        self.elections += other.elections;
        self.quiescent_terminated += other.quiescent_terminated;
        self.quiescent += other.quiescent;
        self.terminated_nonquiescent += other.terminated_nonquiescent;
        self.budget_exhausted += other.budget_exhausted;
        self.total_pulses += other.total_pulses;
        self.total_sent += other.total_sent;
        self.faults_injected += other.faults_injected;
        self.peak_ring_queue_bytes = self.peak_ring_queue_bytes.max(other.peak_ring_queue_bytes);
        self.pulses_to_quiescence.merge(&other.pulses_to_quiescence);
    }

    /// Median pulses-to-quiescence.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.pulses_to_quiescence.quantile(0.50)
    }

    /// 99th-percentile pulses-to-quiescence.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.pulses_to_quiescence.quantile(0.99)
    }

    /// Folds one ring's run into the aggregate.
    fn absorb(&mut self, rr: &RingRun, n: u64, leaders: u64) {
        self.rings += 1;
        self.nodes += n;
        self.total_pulses += rr.steps;
        self.total_sent += rr.total_sent;
        self.faults_injected += rr.injected;
        self.peak_ring_queue_bytes = self.peak_ring_queue_bytes.max(rr.peak_runs * RUN_BYTES);
        let outcome = rr.outcome();
        match outcome {
            Outcome::QuiescentTerminated => self.quiescent_terminated += 1,
            Outcome::Quiescent => self.quiescent += 1,
            Outcome::TerminatedNonQuiescent => self.terminated_nonquiescent += 1,
            Outcome::BudgetExhausted => self.budget_exhausted += 1,
        }
        if outcome != Outcome::BudgetExhausted {
            self.pulses_to_quiescence.record(rr.steps);
            if leaders == 1 {
                self.elections += 1;
            }
        }
    }

    /// Human-readable multi-line summary (the CLI/smoke-artifact format).
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "fleet: {} rings ({} nodes)\n\
             outcomes: {} quiescent-terminated | {} quiescent | \
             {} terminated-nonquiescent | {} budget-exhausted\n\
             elections won (unique leader): {}\n\
             pulses: {} delivered, {} sent | faults injected: {}\n\
             pulses-to-quiescence: p50={} p99={} max={}\n\
             peak queue bytes/ring: {}\n",
            self.rings,
            self.nodes,
            self.quiescent_terminated,
            self.quiescent,
            self.terminated_nonquiescent,
            self.budget_exhausted,
            self.elections,
            self.total_pulses,
            self.total_sent,
            self.faults_injected,
            self.p50(),
            self.p99(),
            self.pulses_to_quiescence.max(),
            self.peak_ring_queue_bytes,
        )
    }
}

impl Default for FleetReport {
    fn default() -> FleetReport {
        FleetReport::new()
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

// ---------------------------------------------------------------------------
// Shard and fleet entry points
// ---------------------------------------------------------------------------

/// Runs one shard of rings (`rings` is a range of ring indices) through
/// shared struct-of-arrays arenas and returns its aggregate report.
///
/// `make(plan, pos)` builds the node at position `pos` of a planned ring
/// (its ID is `plan.ids[pos]`, its clockwise port [`Port::One`]);
/// `is_leader` classifies a node's final state. Shards are embarrassingly
/// parallel: any partition of `0..cfg.rings` into shards, run on any
/// threads in any order, merges to the same [`FleetReport`].
pub fn run_shard<P, F, L>(
    cfg: &FleetConfig,
    round: u64,
    rings: Range<u64>,
    make: &F,
    is_leader: &L,
) -> FleetReport
where
    P: Protocol<Pulse>,
    F: Fn(&RingPlan, usize) -> P,
    L: Fn(&P) -> bool,
{
    let count = (rings.end.saturating_sub(rings.start)) as usize;

    // Build pass: fill the shard's protocol-state arena and per-ring plans.
    let mut nodes: Vec<P> = Vec::new();
    let mut ring_n: Vec<u32> = Vec::with_capacity(count);
    let mut ring_inject: Vec<u32> = Vec::with_capacity(count);
    let mut plan = RingPlan::empty();
    for ring in rings {
        fill_plan(cfg, round, ring, &mut plan);
        ring_n.push(plan.n as u32);
        ring_inject.push(plan.inject.map_or(NO_RUN, |c| c as u32));
        for pos in 0..plan.n {
            nodes.push(make(&plan, pos));
        }
    }

    // Flat channel/termination arenas for the whole shard.
    let total_nodes = nodes.len();
    let mut terminated = vec![false; total_nodes];
    let mut qlen = vec![0u64; 2 * total_nodes];
    let mut qhead = vec![NO_RUN; 2 * total_nodes];
    let mut qtail = vec![NO_RUN; 2 * total_nodes];
    let mut runs = RunArena::new();
    let mut outbox: Vec<(usize, Pulse)> = Vec::new();

    // Run pass: rings execute one after another through the same arenas.
    let mut report = FleetReport::new();
    let mut off = 0usize;
    for (i, &rn) in ring_n.iter().enumerate() {
        let n = rn as usize;
        let mut q = Queues {
            len: &mut qlen[2 * off..2 * (off + n)],
            head: &mut qhead[2 * off..2 * (off + n)],
            tail: &mut qtail[2 * off..2 * (off + n)],
            runs: &mut runs,
        };
        let inject = (ring_inject[i] != NO_RUN).then_some(ring_inject[i] as usize);
        let ring_nodes = &mut nodes[off..off + n];
        let rr = run_ring(
            ring_nodes,
            &mut terminated[off..off + n],
            &mut q,
            &mut outbox,
            inject,
            cfg.budget_for(n),
            &mut NullObserver,
        );
        if rr.in_flight > 0 {
            q.clear();
        }
        let leaders = ring_nodes.iter().filter(|p| is_leader(p)).count() as u64;
        report.absorb(&rr, n as u64, leaders);
        off += n;
    }
    report
}

/// Runs one whole round of the fleet sequentially, shard by shard.
///
/// This is the single-threaded reference: the parallel driver in
/// `co_bench` fans the same shards out over its thread pool and must (and
/// does, by test) produce a byte-identical report.
pub fn run_fleet_sequential<P, F, L>(
    cfg: &FleetConfig,
    round: u64,
    make: &F,
    is_leader: &L,
) -> FleetReport
where
    P: Protocol<Pulse>,
    F: Fn(&RingPlan, usize) -> P,
    L: Fn(&P) -> bool,
{
    let mut report = FleetReport::new();
    for shard in 0..cfg.shard_count() {
        let part = run_shard(cfg, round, cfg.shard_range(shard), make, is_leader);
        report.merge(&part);
    }
    report
}

/// Full observable state of one fleet ring's run, for equivalence checks
/// against a plain [`Simulation`](crate::Simulation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetRingDetail {
    /// The ring's deterministic plan (size, IDs, fault choice).
    pub plan: RingPlan,
    /// The run report, field-for-field what `Simulation::run` returns.
    pub report: RunReport,
    /// Full engine statistics, field-for-field `Simulation::stats`.
    pub stats: SimStats,
    /// End-state fingerprint, bit-for-bit `Simulation::fingerprint`.
    pub fingerprint: u64,
    /// Number of nodes classified as leader at the end.
    pub leaders: u64,
    /// The pulse budget the ring ran under (for rebuilding the equivalent
    /// single-ring run: `Budget::steps(budget)`).
    pub budget: Budget,
}

/// Runs a single fleet ring with full bookkeeping: per-port counters and an
/// end-state fingerprint, matching what the equivalent single-ring
/// [`Simulation`](crate::Simulation) (oriented ring, FIFO scheduler,
/// untimed, per-pulse) reports. The contract behind the one-ring
/// equivalence test: fleet execution is the engine's execution, re-packed.
pub fn run_ring_detailed<P, F, L>(
    cfg: &FleetConfig,
    round: u64,
    ring: u64,
    make: &F,
    is_leader: &L,
) -> FleetRingDetail
where
    P: Protocol<Pulse> + Snapshot,
    F: Fn(&RingPlan, usize) -> P,
    L: Fn(&P) -> bool,
{
    let plan = ring_plan(cfg, round, ring);
    let n = plan.n;
    let mut nodes: Vec<P> = (0..n).map(|pos| make(&plan, pos)).collect();
    let mut terminated = vec![false; n];
    let mut qlen = vec![0u64; 2 * n];
    let mut qhead = vec![NO_RUN; 2 * n];
    let mut qtail = vec![NO_RUN; 2 * n];
    let mut runs = RunArena::new();
    let mut outbox: Vec<(usize, Pulse)> = Vec::new();
    let mut q = Queues {
        len: &mut qlen,
        head: &mut qhead,
        tail: &mut qtail,
        runs: &mut runs,
    };
    let mut obs = PortCounters {
        sent: vec![[0; 2]; n],
        recv: vec![[0; 2]; n],
    };
    let budget = cfg.budget_for(n);
    let rr = run_ring(
        &mut nodes,
        &mut terminated,
        &mut q,
        &mut outbox,
        plan.inject,
        budget,
        &mut obs,
    );

    // Fingerprint before clearing leftovers: same write order as
    // `Simulation::fingerprint` (node count, started flag, per-channel
    // queue lengths in global channel order, termination flags, node
    // fingerprints).
    let mut fp = Fingerprint::new();
    fp.write_usize(n);
    fp.write_bool(true);
    for c in 0..2 * n {
        fp.write_usize(q.len[c] as usize);
    }
    for &t in &terminated {
        fp.write_bool(t);
    }
    for node in &nodes {
        fp.write_u64(node.fingerprint());
    }
    let fingerprint = fp.finish();

    let stats = SimStats {
        total_sent: rr.total_sent,
        total_delivered: rr.total_delivered,
        delivered_to_terminated: rr.delivered_to_terminated,
        steps: rr.steps,
        sent_by_direction: rr.sent_by_direction,
        sent_by_port: obs.sent.iter().map(|p| p.to_vec()).collect(),
        recv_by_port: obs.recv.iter().map(|p| p.to_vec()).collect(),
        timer_fires: 0,
    };
    let report = RunReport {
        outcome: rr.outcome(),
        total_sent: rr.total_sent,
        steps: rr.steps,
        in_flight: rr.in_flight,
    };
    let leaders = nodes.iter().filter(|p| is_leader(p)).count() as u64;
    FleetRingDetail {
        plan,
        report,
        stats,
        fingerprint,
        leaders,
        budget: Budget::steps(budget),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RingSpec, SchedulerKind, Simulation};

    /// A miniature Algorithm 1: send CW on start, relay until the received
    /// count reaches the node's ID. Stabilizes with the ID_max holder as
    /// the unique leader — enough structure to exercise every fleet path
    /// without depending on `co_core`.
    #[derive(Clone, Debug)]
    struct MiniAlg1 {
        id: u64,
        rho: u64,
        leader: bool,
    }

    impl MiniAlg1 {
        fn new(id: u64) -> MiniAlg1 {
            MiniAlg1 {
                id,
                rho: 0,
                leader: false,
            }
        }
    }

    impl Protocol<Pulse> for MiniAlg1 {
        type Output = bool;

        fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
            ctx.send(Port::One, Pulse);
        }

        fn on_message(&mut self, _port: Port, _msg: Pulse, ctx: &mut Context<'_, Pulse>) {
            self.rho += 1;
            if self.rho == self.id {
                self.leader = true;
            } else {
                self.leader = false;
                ctx.send(Port::One, Pulse);
            }
        }

        fn output(&self) -> Option<bool> {
            Some(self.leader)
        }
    }

    impl Snapshot for MiniAlg1 {
        type State = MiniAlg1;

        fn extract(&self) -> MiniAlg1 {
            self.clone()
        }

        fn restore(&mut self, state: &MiniAlg1) {
            *self = state.clone();
        }

        fn fingerprint(&self) -> u64 {
            let mut fp = Fingerprint::new();
            fp.write_u64(self.id);
            fp.write_u64(self.rho);
            fp.write_bool(self.leader);
            fp.finish()
        }
    }

    fn mini(plan: &RingPlan, pos: usize) -> MiniAlg1 {
        MiniAlg1::new(plan.ids[pos])
    }

    fn mini_leader(p: &MiniAlg1) -> bool {
        p.leader
    }

    #[test]
    fn ring_sizes_parse_and_display() {
        assert_eq!("4".parse::<RingSizes>().unwrap(), RingSizes::Fixed(4));
        assert_eq!(
            "uniform:3..9".parse::<RingSizes>().unwrap(),
            RingSizes::Uniform { min: 3, max: 9 }
        );
        assert_eq!(
            "mix:3,5,8".parse::<RingSizes>().unwrap(),
            RingSizes::Mix(vec![3, 5, 8])
        );
        for s in ["4", "uniform:3..9", "mix:3,5,8"] {
            assert_eq!(s.parse::<RingSizes>().unwrap().to_string(), s);
        }
        assert!("0".parse::<RingSizes>().is_err());
        assert!("uniform:9..3".parse::<RingSizes>().is_err());
        assert!("uniform:5".parse::<RingSizes>().is_err());
        assert!("mix:".parse::<RingSizes>().is_err());
        assert!("bogus:1".parse::<RingSizes>().is_err());
    }

    #[test]
    fn plans_are_deterministic_and_vary_by_ring() {
        let mut cfg = FleetConfig::new(100);
        cfg.sizes = RingSizes::Uniform { min: 3, max: 9 };
        cfg.fault_rate = 0.5;
        let a = ring_plan(&cfg, 0, 7);
        let b = ring_plan(&cfg, 0, 7);
        assert_eq!(a, b);
        let distinct: std::collections::HashSet<u64> =
            (0..100).map(|r| ring_seed(cfg.seed, 0, r)).collect();
        assert_eq!(distinct.len(), 100, "ring seeds must not collide here");
        // IDs are always a permutation of 1..=n.
        let mut ids = a.ids.clone();
        ids.sort_unstable();
        assert_eq!(ids, (1..=a.n as u64).collect::<Vec<_>>());
    }

    #[test]
    fn histogram_quantiles_are_sane() {
        let mut h = PulseHistogram::new();
        for v in 1..=1000 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        assert!((256..=640).contains(&p50), "p50 = {p50}");
        assert!(h.quantile(0.99) >= p50);
        assert_eq!(PulseHistogram::new().quantile(0.5), 0);
        // Small values are exact.
        let mut h = PulseHistogram::new();
        for _ in 0..10 {
            h.record(5);
        }
        assert_eq!(h.quantile(0.5), 5);
    }

    #[test]
    fn bucket_floor_inverts_bucket_of() {
        for v in [0, 1, 7, 8, 9, 15, 16, 100, 1 << 20, u64::MAX] {
            let b = bucket_of(v);
            assert!(b < HIST_BUCKETS);
            assert!(bucket_floor(b) <= v);
            if b + 1 < HIST_BUCKETS && v < u64::MAX {
                assert!(bucket_floor(b + 1) > v, "v = {v}");
            }
        }
    }

    #[test]
    fn fleet_elects_on_every_clean_ring() {
        let mut cfg = FleetConfig::new(50);
        cfg.sizes = RingSizes::Fixed(5);
        let report = run_fleet_sequential(&cfg, 0, &mini, &mini_leader);
        assert_eq!(report.rings, 50);
        assert_eq!(report.nodes, 250);
        assert_eq!(report.elections, 50);
        assert_eq!(report.quiescent, 50);
        assert_eq!(report.budget_exhausted, 0);
        // MiniAlg1 with IDs 1..=5: every node sends/receives ID_max = 5
        // pulses, so each ring sends exactly 25.
        assert_eq!(report.total_sent, 50 * 25);
        assert_eq!(report.total_pulses, 50 * 25);
        assert_eq!(report.faults_injected, 0);
        assert!(report.peak_ring_queue_bytes >= RUN_BYTES);
    }

    #[test]
    fn tiny_rings_run() {
        for n in 1..=2 {
            let mut cfg = FleetConfig::new(10);
            cfg.sizes = RingSizes::Fixed(n);
            let report = run_fleet_sequential(&cfg, 0, &mini, &mini_leader);
            assert_eq!(report.elections, 10, "n = {n}");
            assert_eq!(report.quiescent, 10, "n = {n}");
        }
    }

    #[test]
    fn shard_partition_never_changes_the_report() {
        let mut cfg = FleetConfig::new(200);
        cfg.sizes = RingSizes::Uniform { min: 3, max: 9 };
        cfg.fault_rate = 0.1;
        let whole = run_shard(&cfg, 0, 0..200, &mini, &mini_leader);
        for split in [1, 37, 100, 199] {
            let mut parts = run_shard(&cfg, 0, 0..split, &mini, &mini_leader);
            parts.merge(&run_shard(&cfg, 0, split..200, &mini, &mini_leader));
            assert_eq!(whole, parts, "split at {split}");
        }
        // And via the configured shard size.
        cfg.shard_rings = 17;
        assert_eq!(run_fleet_sequential(&cfg, 0, &mini, &mini_leader), whole);
    }

    #[test]
    fn injected_faults_are_counted_and_break_stabilization() {
        let mut cfg = FleetConfig::new(20);
        cfg.sizes = RingSizes::Fixed(4);
        cfg.fault_rate = 1.0;
        let report = run_fleet_sequential(&cfg, 0, &mini, &mini_leader);
        assert_eq!(report.faults_injected, 20);
        // A spurious pulse circulates forever under a relay protocol: every
        // ring must hit its budget, and none reaches quiescence.
        assert_eq!(report.budget_exhausted, 20);
        assert_eq!(report.elections, 0);
        assert_eq!(report.pulses_to_quiescence.count(), 0);
        assert_eq!(report.total_pulses, 20 * cfg.budget_for(4));
    }

    #[test]
    fn rounds_decorrelate() {
        let mut cfg = FleetConfig::new(64);
        cfg.sizes = RingSizes::Uniform { min: 3, max: 9 };
        let r0 = run_fleet_sequential(&cfg, 0, &mini, &mini_leader);
        let r1 = run_fleet_sequential(&cfg, 1, &mini, &mini_leader);
        assert_eq!(r0.rings, r1.rings);
        assert_ne!(r0.nodes, r1.nodes, "rounds should sample different sizes");
    }

    #[test]
    fn one_ring_fleet_matches_simulation() {
        let mut cfg = FleetConfig::new(1);
        for n in [1usize, 2, 3, 6] {
            for seed in 0..4u64 {
                cfg.sizes = RingSizes::Fixed(n);
                cfg.seed = seed;
                let detail = run_ring_detailed(&cfg, 0, 0, &mini, &mini_leader);
                let spec = RingSpec::oriented(detail.plan.ids.clone());
                let nodes: Vec<MiniAlg1> = detail
                    .plan
                    .ids
                    .iter()
                    .map(|&id| MiniAlg1::new(id))
                    .collect();
                let mut sim: Simulation<Pulse, MiniAlg1> =
                    Simulation::new(spec.wiring(), nodes, SchedulerKind::Fifo.build(0));
                let report = sim.run(detail.budget);
                assert_eq!(detail.report, report, "n = {n}, seed = {seed}");
                assert_eq!(&detail.stats, sim.stats(), "n = {n}, seed = {seed}");
                assert_eq!(
                    detail.fingerprint,
                    sim.fingerprint(),
                    "n = {n}, seed = {seed}"
                );
            }
        }
    }

    #[test]
    fn report_merge_is_commutative() {
        let mut cfg = FleetConfig::new(60);
        cfg.sizes = RingSizes::Uniform { min: 3, max: 7 };
        cfg.fault_rate = 0.2;
        let a = run_shard(&cfg, 0, 0..30, &mini, &mini_leader);
        let b = run_shard(&cfg, 0, 30..60, &mini, &mini_leader);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.rings, 60);
    }

    #[test]
    fn render_mentions_the_headline_numbers() {
        let mut cfg = FleetConfig::new(8);
        cfg.sizes = RingSizes::Fixed(3);
        let report = run_fleet_sequential(&cfg, 0, &mini, &mini_leader);
        let text = report.render();
        assert!(text.contains("8 rings"));
        assert!(text.contains("elections won"));
        assert!(text.contains("p50="));
        assert!(report.to_string().contains("peak queue bytes/ring"));
    }
}
