//! Message types carried by network channels.

use std::fmt;

/// Anything a channel can carry.
///
/// Blanket-implemented for every `Clone + Debug + Send + 'static` type, so
/// protocols can use plain enums or structs as payloads. The
/// content-oblivious model is obtained by instantiating the network with
/// [`Pulse`], which carries no information at all.
pub trait Message: Clone + fmt::Debug + Send + 'static {}

impl<T: Clone + fmt::Debug + Send + 'static> Message for T {}

/// A fully defective message: content erased by noise, length zero.
///
/// In the fully defective network model of Censor-Hillel, Cohen, Gelles, and
/// Sela (Distributed Computing 2023), adopted by the paper, *every* message is
/// corrupted into an empty message whose only observable property is its
/// existence. Algorithms built over `Pulse` are content-oblivious by
/// construction: there is no content to read.
///
/// ```rust
/// use co_net::Pulse;
/// // A pulse has no fields and conveys no information beyond arrival.
/// let p = Pulse;
/// assert_eq!(p, Pulse::default());
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pulse;

impl fmt::Display for Pulse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("pulse")
    }
}

/// A message type with exactly one observable value.
///
/// Marker for payloads whose content carries no information — every value is
/// indistinguishable from [`Default::default`]. Channels carrying a
/// `UnitMessage` can therefore store queued traffic as *counters* instead of
/// per-message envelopes: the run-length
/// [`QueueBackend::Counter`](crate::QueueBackend::Counter) store
/// reconstructs each delivered message from `M::default()`.
///
/// Only implement this for types where that reconstruction is lossless,
/// i.e. types with a single value. [`Pulse`] is the canonical instance.
pub trait UnitMessage: Message + Default {}

impl UnitMessage for Pulse {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulse_is_zero_sized() {
        assert_eq!(std::mem::size_of::<Pulse>(), 0);
    }

    #[test]
    fn pulse_displays() {
        assert_eq!(Pulse.to_string(), "pulse");
        assert_eq!(format!("{Pulse:?}"), "Pulse");
    }

    #[test]
    fn arbitrary_payloads_are_messages() {
        fn assert_message<M: Message>() {}
        assert_message::<Pulse>();
        assert_message::<u64>();
        assert_message::<(u32, bool)>();
    }
}
